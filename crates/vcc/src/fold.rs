//! Constant folding and algebraic simplification (opt_level ≥ 1).
//!
//! Folds literal arithmetic, strips `+0` / `*1` identities, and evaluates
//! casts of literals. Runs on the typed AST before codegen; this is one of
//! the compiler transformations that make binary-level instruction counts
//! differ from naive source-level ones.

use mira_minic::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, Type, UnOp};

/// Fold constants across a whole program, in place.
pub fn fold_program(p: &mut Program) {
    for item in &mut p.items {
        if let mira_minic::Item::Func(f) = item {
            for s in &mut f.body.stmts {
                fold_stmt(s);
            }
        }
    }
}

fn fold_stmt(s: &mut Stmt) {
    match &mut s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                fold_expr(e);
            }
        }
        StmtKind::Expr(e) => fold_expr(e),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            fold_expr(cond);
            fold_stmt(then_branch);
            if let Some(e) = else_branch {
                fold_stmt(e);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                fold_stmt(i);
            }
            if let Some(c) = cond {
                fold_expr(c);
            }
            if let Some(st) = step {
                fold_expr(st);
            }
            fold_stmt(body);
        }
        StmtKind::While { cond, body } => {
            fold_expr(cond);
            fold_stmt(body);
        }
        StmtKind::Return(Some(e)) => fold_expr(e),
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                fold_stmt(s);
            }
        }
        StmtKind::Return(None) | StmtKind::Empty => {}
    }
}

fn as_int(e: &Expr) -> Option<i64> {
    match e.kind {
        ExprKind::IntLit(v) => Some(v),
        _ => None,
    }
}

fn as_float(e: &Expr) -> Option<f64> {
    match e.kind {
        ExprKind::FloatLit(v) => Some(v),
        _ => None,
    }
}

fn fold_expr(e: &mut Expr) {
    // fold children first
    match &mut e.kind {
        ExprKind::Assign { target, value, .. } => {
            fold_expr(target);
            fold_expr(value);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            fold_expr(lhs);
            fold_expr(rhs);
        }
        ExprKind::Unary { operand, .. }
        | ExprKind::Cast { operand, .. }
        | ExprKind::ImplicitCast { operand, .. } => fold_expr(operand),
        ExprKind::Index { base, index } => {
            fold_expr(base);
            fold_expr(index);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                fold_expr(a);
            }
        }
        ExprKind::IncDec { .. } | ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Var(_) => {}
    }

    let span = e.span;
    let replacement = match &e.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            if let (Some(a), Some(b)) = (as_int(lhs), as_int(rhs)) {
                fold_int_binop(*op, a, b).map(ExprKind::IntLit)
            } else if let (Some(a), Some(b)) = (as_float(lhs), as_float(rhs)) {
                fold_float_binop(*op, a, b)
            } else {
                fold_identities(*op, lhs, rhs)
            }
        }
        ExprKind::Unary { op, operand } => match (op, &operand.kind) {
            (UnOp::Neg, ExprKind::IntLit(v)) => Some(ExprKind::IntLit(v.wrapping_neg())),
            (UnOp::Neg, ExprKind::FloatLit(v)) => Some(ExprKind::FloatLit(-v)),
            (UnOp::Not, ExprKind::IntLit(v)) => Some(ExprKind::IntLit((*v == 0) as i64)),
            _ => None,
        },
        ExprKind::Cast { ty, operand } | ExprKind::ImplicitCast { ty, operand } => {
            match (&ty, &operand.kind) {
                (Type::Double, ExprKind::IntLit(v)) => Some(ExprKind::FloatLit(*v as f64)),
                (Type::Int, ExprKind::FloatLit(v)) => Some(ExprKind::IntLit(*v as i64)),
                (Type::Int, ExprKind::IntLit(v)) => Some(ExprKind::IntLit(*v)),
                (Type::Double, ExprKind::FloatLit(v)) => Some(ExprKind::FloatLit(*v)),
                _ => None,
            }
        }
        _ => None,
    };
    if let Some(kind) = replacement {
        let ty = e.ty.clone();
        *e = Expr { kind, span, ty };
    }
}

fn fold_int_binop(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::And => ((a != 0) && (b != 0)) as i64,
        BinOp::Or => ((a != 0) || (b != 0)) as i64,
    })
}

fn fold_float_binop(op: BinOp, a: f64, b: f64) -> Option<ExprKind> {
    Some(match op {
        BinOp::Add => ExprKind::FloatLit(a + b),
        BinOp::Sub => ExprKind::FloatLit(a - b),
        BinOp::Mul => ExprKind::FloatLit(a * b),
        BinOp::Div => ExprKind::FloatLit(a / b),
        BinOp::Lt => ExprKind::IntLit((a < b) as i64),
        BinOp::Le => ExprKind::IntLit((a <= b) as i64),
        BinOp::Gt => ExprKind::IntLit((a > b) as i64),
        BinOp::Ge => ExprKind::IntLit((a >= b) as i64),
        BinOp::Eq => ExprKind::IntLit((a == b) as i64),
        BinOp::Ne => ExprKind::IntLit((a != b) as i64),
        BinOp::Mod | BinOp::And | BinOp::Or => return None,
    })
}

/// `x + 0`, `x - 0`, `x * 1`, `x / 1`, `x * 0` (int only — FP `x*0` must
/// keep NaN semantics).
fn fold_identities(op: BinOp, lhs: &Expr, rhs: &Expr) -> Option<ExprKind> {
    match (op, as_int(lhs), as_int(rhs)) {
        (BinOp::Add, Some(0), _) => Some(rhs.kind.clone()),
        (BinOp::Add, _, Some(0)) | (BinOp::Sub, _, Some(0)) => Some(lhs.kind.clone()),
        (BinOp::Mul, Some(1), _) => Some(rhs.kind.clone()),
        (BinOp::Mul, _, Some(1)) | (BinOp::Div, _, Some(1)) => Some(lhs.kind.clone()),
        (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0))
            if lhs.ty == Type::Int && rhs.ty == Type::Int =>
        {
            // only safe when the discarded side has no side effects
            let side = if as_int(lhs) == Some(0) { rhs } else { lhs };
            if is_pure(side) {
                Some(ExprKind::IntLit(0))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn is_pure(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Var(_) => true,
        ExprKind::Binary { lhs, rhs, .. } => is_pure(lhs) && is_pure(rhs),
        ExprKind::Unary { operand, .. }
        | ExprKind::Cast { operand, .. }
        | ExprKind::ImplicitCast { operand, .. } => is_pure(operand),
        ExprKind::Index { base, index } => is_pure(base) && is_pure(index),
        ExprKind::Assign { .. } | ExprKind::Call { .. } | ExprKind::IncDec { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_minic::frontend;

    fn folded_return(src: &str) -> Expr {
        let mut p = frontend(src).unwrap();
        fold_program(&mut p);
        let f = p.functions().next().unwrap();
        let StmtKind::Return(Some(e)) = &f.body.stmts.last().unwrap().kind else {
            panic!("expected return")
        };
        e.clone()
    }

    #[test]
    fn folds_int_arithmetic() {
        let e = folded_return("int f() { return 2 + 3 * 4; }");
        assert_eq!(e.kind, ExprKind::IntLit(14));
    }

    #[test]
    fn folds_float_and_casts() {
        let e = folded_return("double f() { return 1 + 2; }");
        // int add folds to 3, implicit cast folds to 3.0
        assert_eq!(e.kind, ExprKind::FloatLit(3.0));
        let e = folded_return("int f() { return (int)2.9; }");
        assert_eq!(e.kind, ExprKind::IntLit(2));
    }

    #[test]
    fn folds_identities() {
        let e = folded_return("int f(int x) { return x + 0; }");
        assert_eq!(e.kind, ExprKind::Var("x".to_string()));
        let e = folded_return("int f(int x) { return x * 1; }");
        assert_eq!(e.kind, ExprKind::Var("x".to_string()));
        let e = folded_return("int f(int x) { return x * 0; }");
        assert_eq!(e.kind, ExprKind::IntLit(0));
    }

    #[test]
    fn keeps_division_by_zero() {
        let e = folded_return("int f() { return 1 / 0; }");
        assert!(matches!(e.kind, ExprKind::Binary { .. }));
    }

    #[test]
    fn impure_mul_zero_kept() {
        let src = "int g(int x) { return x; } int f(int x) { return g(x) * 0; }";
        let mut p = frontend(src).unwrap();
        fold_program(&mut p);
        let f = p.function("f").unwrap();
        let StmtKind::Return(Some(e)) = &f.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Binary { .. }));
    }

    #[test]
    fn folds_comparisons_and_not() {
        let e = folded_return("int f() { return !(3 < 2); }");
        assert_eq!(e.kind, ExprKind::IntLit(1));
    }
}
