//! The dynamic half of `mira-mem`: a two-level set-associative LRU cache
//! simulator the VM hangs off its load/store path (behind
//! `VmOptions::mem_profile`).
//!
//! Semantics, chosen to make the static models checkable *exactly*:
//!
//! * Every probe is one explicit-memory-operand word access (8 bytes; a
//!   packed `movupd` arrives as two consecutive 8-byte accesses, touching
//!   the same lines one 16-byte access would). `push`/`pop` and implicit
//!   `call`/`ret` return-address traffic never reach the simulator —
//!   mirroring `mira_isa::Inst::memory_bytes`, the byte-accounting
//!   contract the static side counts against.
//! * Both levels are set-associative with true LRU replacement; loads and
//!   stores allocate alike (write-allocate), and write-backs are not
//!   modeled — a fill is a fill, which is what the static distinct-line
//!   predictions count.
//! * L1 fills are split into *data* fills (the VM heap, where host-allocated
//!   arrays live) and *stack* fills (frames, spills), so cold-cache data
//!   fills can be compared against the per-array footprints of
//!   [`crate::access`] without the frame noise.

use mira_arch::{CacheHierarchy, CacheLevel};

/// Hit/miss counters of one cache level (line-granular probes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LevelStats {
    pub hits: u64,
    pub misses: u64,
}

impl LevelStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when the level was never probed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Everything the simulator counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Word accesses (one per 8-byte load/store reaching the simulator).
    pub loads: u64,
    pub stores: u64,
    /// Bytes moved by explicit memory operands.
    pub load_bytes: u64,
    pub store_bytes: u64,
    pub l1: LevelStats,
    pub l2: LevelStats,
    /// L1 fills whose line lies in the VM heap (host-allocated arrays).
    pub data_l1_fills: u64,
    /// L1 fills whose line lies in the stack region (frames, spills).
    pub stack_l1_fills: u64,
}

impl MemStats {
    pub fn total_bytes(&self) -> u64 {
        self.load_bytes + self.store_bytes
    }

    /// Bytes that had to come past L1 (line-fill traffic into L1).
    pub fn l1_fill_bytes(&self, line_bytes: u32) -> u64 {
        self.l1.misses * line_bytes as u64
    }

    /// Bytes that had to come past L2 (line-fill traffic into L2).
    pub fn l2_fill_bytes(&self, line_bytes: u32) -> u64 {
        self.l2.misses * line_bytes as u64
    }
}

/// One set-associative level: per set, resident line numbers ordered
/// most-recently-used first.
struct Level {
    sets: Vec<Vec<u64>>,
    assoc: usize,
}

impl Level {
    fn new(level: CacheLevel, line_bytes: u32) -> Level {
        // the set-count formula lives in mira-arch so the static models
        // and the simulator can never disagree about geometry
        Level {
            sets: vec![Vec::new(); level.sets(line_bytes) as usize],
            assoc: level.assoc.max(1) as usize,
        }
    }

    /// Probe for `line`; returns `true` on hit. Misses allocate (LRU
    /// eviction when the set is full).
    fn probe(&mut self, line: u64) -> bool {
        let idx = (line as usize) % self.sets.len();
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if pos != 0 {
                let l = set.remove(pos);
                set.insert(0, l);
            }
            true
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }

    fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// The simulator: L1 and L2, shared line size, LRU, write-allocate.
pub struct CacheSim {
    line_shift: u32,
    l1: Level,
    l2: Level,
    stats: MemStats,
}

impl CacheSim {
    /// Build a cold simulator from a declared hierarchy.
    ///
    /// Panics on a line size that is not a power of two ≥ 8 — the
    /// description parser rejects those, and a hand-built hierarchy that
    /// slipped one through would make the simulator silently disagree
    /// with the static line-footprint models.
    pub fn new(h: CacheHierarchy) -> CacheSim {
        let line = h.line_bytes;
        assert!(
            line >= 8 && line.is_power_of_two(),
            "cache line size must be a power of two >= 8, got {line}"
        );
        CacheSim {
            line_shift: line.trailing_zeros(),
            l1: Level::new(h.l1, line),
            l2: Level::new(h.l2, line),
            stats: MemStats::default(),
        }
    }

    pub fn line_bytes(&self) -> u32 {
        1 << self.line_shift
    }

    /// Record one access. `stack` marks accesses outside the VM heap
    /// (frame slots and spills); they are simulated identically but their
    /// L1 fills are tallied separately.
    #[inline]
    pub fn access(&mut self, addr: u64, len: u32, store: bool, stack: bool) {
        if store {
            self.stats.stores += 1;
            self.stats.store_bytes += len as u64;
        } else {
            self.stats.loads += 1;
            self.stats.load_bytes += len as u64;
        }
        let first = addr >> self.line_shift;
        let last = (addr + len.max(1) as u64 - 1) >> self.line_shift;
        for line in first..=last {
            if self.l1.probe(line) {
                self.stats.l1.hits += 1;
            } else {
                self.stats.l1.misses += 1;
                if stack {
                    self.stats.stack_l1_fills += 1;
                } else {
                    self.stats.data_l1_fills += 1;
                }
                if self.l2.probe(line) {
                    self.stats.l2.hits += 1;
                } else {
                    self.stats.l2.misses += 1;
                }
            }
        }
    }

    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Back to a cold cache with zeroed counters.
    pub fn reset(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.stats = MemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_arch::{CacheHierarchy, CacheLevel};

    fn tiny() -> CacheSim {
        // 2 sets × 2 ways × 64B lines = 256B L1; 1KB L2
        CacheSim::new(CacheHierarchy {
            line_bytes: 64,
            l1: CacheLevel {
                size_bytes: 256,
                assoc: 2,
            },
            l2: CacheLevel {
                size_bytes: 1024,
                assoc: 4,
            },
        })
    }

    #[test]
    fn bytes_and_word_counts() {
        let mut s = tiny();
        s.access(0, 8, false, false);
        s.access(8, 8, true, false);
        s.access(64, 16, false, false);
        let st = s.stats();
        assert_eq!(st.loads, 2);
        assert_eq!(st.stores, 1);
        assert_eq!(st.load_bytes, 24);
        assert_eq!(st.store_bytes, 8);
        assert_eq!(st.total_bytes(), 32);
    }

    #[test]
    fn same_line_hits_after_cold_fill() {
        let mut s = tiny();
        s.access(0, 8, false, false);
        for i in 1..8 {
            s.access(i * 8, 8, false, false);
        }
        let st = s.stats();
        assert_eq!(st.l1.misses, 1, "one cold fill for the line");
        assert_eq!(st.l1.hits, 7);
        assert_eq!(st.l2.misses, 1);
        assert_eq!(st.data_l1_fills, 1);
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut s = tiny();
        // set 0 holds lines 0, 2, 4, ... (2 sets); fill both ways
        s.access(0, 8, false, false); // line 0 → miss
        s.access(128, 8, false, false); // line 2 → miss
        s.access(0, 8, false, false); // line 0 → hit, now MRU
        s.access(256, 8, false, false); // line 4 → miss, evicts line 2
        s.access(0, 8, false, false); // line 0 still resident → hit
        s.access(128, 8, false, false); // line 2 evicted → miss, but L2 hit
        let st = s.stats();
        assert_eq!(st.l1.misses, 4);
        assert_eq!(st.l1.hits, 2);
        assert_eq!(st.l2.misses, 3, "only the cold misses reach memory");
        assert_eq!(st.l2.hits, 1);
    }

    #[test]
    fn straddling_access_touches_both_lines() {
        let mut s = tiny();
        s.access(56, 16, false, false); // crosses the 64-byte boundary
        let st = s.stats();
        assert_eq!(st.l1.misses, 2);
        assert_eq!(st.load_bytes, 16);
    }

    #[test]
    fn stack_fills_tallied_separately() {
        let mut s = tiny();
        s.access(0, 8, false, false);
        s.access(1 << 20, 8, true, true);
        let st = s.stats();
        assert_eq!(st.data_l1_fills, 1);
        assert_eq!(st.stack_l1_fills, 1);
        assert_eq!(st.l1.misses, 2);
    }

    #[test]
    fn reset_is_cold() {
        let mut s = tiny();
        s.access(0, 8, false, false);
        s.access(0, 8, false, false);
        assert_eq!(s.stats().l1.hits, 1);
        s.reset();
        assert_eq!(s.stats(), MemStats::default());
        s.access(0, 8, false, false);
        assert_eq!(s.stats().l1.misses, 1, "cache content was cleared");
    }

    #[test]
    fn streaming_fills_equal_footprint_when_resident() {
        // default hierarchy: 3 arrays of 1024 doubles fit L1 entirely →
        // cold fills = 3 · 8KiB/64 = 384 no matter how many sweeps
        let mut s = CacheSim::new(CacheHierarchy::default());
        let base = [0u64, 8192, 16384];
        for _ in 0..3 {
            for i in 0..1024u64 {
                for b in base {
                    s.access(b + i * 8, 8, false, false);
                }
            }
        }
        assert_eq!(s.stats().data_l1_fills, 384);
        assert_eq!(s.stats().l1.misses, 384);
    }
}
