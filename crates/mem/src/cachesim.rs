//! The dynamic half of `mira-mem`: a two-level set-associative LRU cache
//! simulator the VM hangs off its load/store path (behind
//! `VmOptions::mem_profile`).
//!
//! Semantics, chosen to make the static models checkable *exactly*:
//!
//! * Every probe is one explicit-memory-operand word access (8 bytes; a
//!   packed `movupd` arrives as two consecutive 8-byte accesses, touching
//!   the same lines one 16-byte access would). `push`/`pop` and implicit
//!   `call`/`ret` return-address traffic never reach the simulator —
//!   mirroring `mira_isa::Inst::memory_bytes`, the byte-accounting
//!   contract the static side counts against.
//! * Both levels are set-associative with true LRU replacement; loads and
//!   stores allocate alike (write-allocate), and dirty lines are tracked:
//!   evicting a dirty L1 line writes it back toward L2
//!   ([`LevelStats::writebacks`]), marking the L2 copy dirty — or passing
//!   straight through to memory (an L2 write-back) when L2 no longer
//!   holds it; evicting a dirty L2 line is an L2 write-back. Together
//!   with the fills this makes the traffic crossing each boundary
//!   observable: [`MemStats::beyond_l1_bytes`] /
//!   [`MemStats::beyond_l2_bytes`] are what a roofline's L2 and memory
//!   ceilings cap. [`CacheSim::flush`] drains still-resident dirty lines
//!   so end-of-run store traffic is accounted before the stats are read.
//! * L1 fills and byte counts are split into *data* (the VM heap, where
//!   host-allocated arrays live) and *stack* (frames, spills), so
//!   cold-cache data fills can be compared against the per-array
//!   footprints of [`crate::access`], and data bytes against the
//!   frame-excluded closed forms (`Model::data_load_bytes_expr`).

use mira_arch::{CacheHierarchy, CacheLevel};

/// Hit/miss/write-back counters of one cache level (line-granular probes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LevelStats {
    pub hits: u64,
    pub misses: u64,
    /// Dirty lines this level evicted (or flushed) toward the next level —
    /// at L1 the L1→L2 write-back traffic, at L2 the L2→memory traffic
    /// (including L1 write-backs that passed through a non-resident L2).
    pub writebacks: u64,
}

impl LevelStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when the level was never probed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Write-back traffic leaving this level, in bytes.
    pub fn writeback_bytes(&self, line_bytes: u32) -> u64 {
        self.writebacks * line_bytes as u64
    }
}

/// Everything the simulator counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Word accesses (one per 8-byte load/store reaching the simulator).
    pub loads: u64,
    pub stores: u64,
    /// Bytes moved by explicit memory operands.
    pub load_bytes: u64,
    pub store_bytes: u64,
    /// The subset of `load_bytes`/`store_bytes` that targets the VM heap
    /// (host-allocated arrays) rather than the stack region — the
    /// dynamic counterpart of the model's frame-excluded data bytes.
    pub data_load_bytes: u64,
    pub data_store_bytes: u64,
    pub l1: LevelStats,
    pub l2: LevelStats,
    /// L1 fills whose line lies in the VM heap (host-allocated arrays).
    pub data_l1_fills: u64,
    /// L1 fills whose line lies in the stack region (frames, spills).
    pub stack_l1_fills: u64,
    /// Heap-data subsets of the boundary-crossing counters, so roofline
    /// consumers can keep frame traffic out of the deeper memory
    /// ceilings (the stack totals are the `LevelStats` counters minus
    /// these).
    pub data_l1_writebacks: u64,
    pub data_l2_fills: u64,
    pub data_l2_writebacks: u64,
}

impl MemStats {
    pub fn total_bytes(&self) -> u64 {
        self.load_bytes + self.store_bytes
    }

    /// Heap-data traffic only (frame/spill bytes excluded).
    pub fn data_bytes(&self) -> u64 {
        self.data_load_bytes + self.data_store_bytes
    }

    /// Bytes that had to come past L1 (line-fill traffic into L1).
    pub fn l1_fill_bytes(&self, line_bytes: u32) -> u64 {
        self.l1.misses * line_bytes as u64
    }

    /// Bytes that had to come past L2 (line-fill traffic into L2).
    pub fn l2_fill_bytes(&self, line_bytes: u32) -> u64 {
        self.l2.misses * line_bytes as u64
    }

    /// Traffic crossing the L1↔L2 boundary: fills into L1 plus dirty
    /// lines written back out of it — what a roofline L2 ceiling caps.
    pub fn beyond_l1_bytes(&self, line_bytes: u32) -> u64 {
        (self.l1.misses + self.l1.writebacks) * line_bytes as u64
    }

    /// Traffic crossing the L2↔memory boundary: fills into L2 plus dirty
    /// write-backs leaving it — what a roofline DRAM ceiling caps.
    pub fn beyond_l2_bytes(&self, line_bytes: u32) -> u64 {
        (self.l2.misses + self.l2.writebacks) * line_bytes as u64
    }

    /// Heap-data traffic crossing the L1↔L2 boundary — the L2 ceiling's
    /// input with frame (stack) lines excluded, mirroring the static
    /// side's frame-free closed forms.
    pub fn data_beyond_l1_bytes(&self, line_bytes: u32) -> u64 {
        (self.data_l1_fills + self.data_l1_writebacks) * line_bytes as u64
    }

    /// Heap-data traffic crossing the L2↔memory boundary (see
    /// [`MemStats::data_beyond_l1_bytes`]).
    pub fn data_beyond_l2_bytes(&self, line_bytes: u32) -> u64 {
        (self.data_l2_fills + self.data_l2_writebacks) * line_bytes as u64
    }
}

/// One resident line of a set: line number, dirty bit, and whether it
/// lies in the stack region (the flag rides along so evictions and
/// write-backs can be attributed to data vs frame traffic).
#[derive(Clone, Copy)]
struct LineState {
    line: u64,
    dirty: bool,
    stack: bool,
}

/// One set-associative level: per set, resident lines ordered
/// most-recently-used first.
struct Level {
    sets: Vec<Vec<LineState>>,
    assoc: usize,
}

impl Level {
    fn new(level: CacheLevel, line_bytes: u32) -> Level {
        // the set-count formula lives in mira-arch so the static models
        // and the simulator can never disagree about geometry
        Level {
            sets: vec![Vec::new(); level.sets(line_bytes) as usize],
            assoc: level.assoc.max(1) as usize,
        }
    }

    /// Probe for `line`; returns `(hit, evicted_dirty_line)` — the
    /// victim as `(line, was_stack)`. Misses allocate (LRU eviction when
    /// the set is full); `dirty` marks the line dirty on top of whatever
    /// state it had.
    fn probe(&mut self, line: u64, dirty: bool, stack: bool) -> (bool, Option<(u64, bool)>) {
        let idx = (line as usize) % self.sets.len();
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            if pos != 0 {
                let l = set.remove(pos);
                set.insert(0, l);
            }
            set[0].dirty |= dirty;
            (true, None)
        } else {
            let victim = if set.len() == self.assoc {
                set.pop().filter(|v| v.dirty).map(|v| (v.line, v.stack))
            } else {
                None
            };
            set.insert(0, LineState { line, dirty, stack });
            (false, victim)
        }
    }

    /// Set the dirty bit of `line` if resident, *without* touching LRU
    /// order (a write-back arriving from the level above is not a use).
    /// Returns whether the line was resident.
    fn mark_dirty(&mut self, line: u64) -> bool {
        let idx = (line as usize) % self.sets.len();
        match self.sets[idx].iter_mut().find(|l| l.line == line) {
            Some(l) => {
                l.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Clear every dirty bit, returning the `(line, was_stack)` pairs
    /// that were dirty (in set order — deterministic). Residency and LRU
    /// order are kept, like a `wbnoinvd` that writes back without
    /// invalidating.
    fn drain_dirty(&mut self) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for l in set.iter_mut() {
                if l.dirty {
                    l.dirty = false;
                    out.push((l.line, l.stack));
                }
            }
        }
        out
    }

    fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// The simulator: L1 and L2, shared line size, LRU, write-allocate,
/// write-back.
pub struct CacheSim {
    line_shift: u32,
    l1: Level,
    l2: Level,
    stats: MemStats,
}

impl CacheSim {
    /// Build a cold simulator from a declared hierarchy.
    ///
    /// Panics on a line size that is not a power of two ≥ 8 — the
    /// description parser rejects those, and a hand-built hierarchy that
    /// slipped one through would make the simulator silently disagree
    /// with the static line-footprint models.
    pub fn new(h: CacheHierarchy) -> CacheSim {
        let line = h.line_bytes;
        assert!(
            line >= 8 && line.is_power_of_two(),
            "cache line size must be a power of two >= 8, got {line}"
        );
        CacheSim {
            line_shift: line.trailing_zeros(),
            l1: Level::new(h.l1, line),
            l2: Level::new(h.l2, line),
            stats: MemStats::default(),
        }
    }

    pub fn line_bytes(&self) -> u32 {
        1 << self.line_shift
    }

    /// A dirty line leaving L1 heads for L2: mark the resident copy dirty
    /// (no LRU update — a write-back is not a use), or pass straight
    /// through to memory as an L2 write-back when L2 evicted it already.
    ///
    /// A line can legitimately produce *two* L2→memory write-backs when
    /// it is re-dirtied across an intervening L2 eviction (the L2 victim
    /// carries the earlier store generation, the pass-through the later
    /// one) — each crossing moves distinct data, as on real hardware.
    fn writeback_from_l1(&mut self, line: u64, stack: bool) {
        self.stats.l1.writebacks += 1;
        if !stack {
            self.stats.data_l1_writebacks += 1;
        }
        if !self.l2.mark_dirty(line) {
            self.stats.l2.writebacks += 1;
            if !stack {
                self.stats.data_l2_writebacks += 1;
            }
        }
    }

    /// Record one access. `stack` marks accesses outside the VM heap
    /// (frame slots and spills); they are simulated identically but their
    /// bytes and L1 fills are tallied separately.
    #[inline]
    pub fn access(&mut self, addr: u64, len: u32, store: bool, stack: bool) {
        if store {
            self.stats.stores += 1;
            self.stats.store_bytes += len as u64;
            if !stack {
                self.stats.data_store_bytes += len as u64;
            }
        } else {
            self.stats.loads += 1;
            self.stats.load_bytes += len as u64;
            if !stack {
                self.stats.data_load_bytes += len as u64;
            }
        }
        let first = addr >> self.line_shift;
        let last = (addr + len.max(1) as u64 - 1) >> self.line_shift;
        for line in first..=last {
            let (hit, victim) = self.l1.probe(line, store, stack);
            if let Some((v, v_stack)) = victim {
                self.writeback_from_l1(v, v_stack);
            }
            if hit {
                self.stats.l1.hits += 1;
            } else {
                self.stats.l1.misses += 1;
                if stack {
                    self.stats.stack_l1_fills += 1;
                } else {
                    self.stats.data_l1_fills += 1;
                }
                // the line fills into L2 clean — the freshly written data
                // lives (dirty) in L1 until it is evicted back down
                let (l2_hit, l2_victim) = self.l2.probe(line, false, stack);
                if let Some((_, v_stack)) = l2_victim {
                    self.stats.l2.writebacks += 1;
                    if !v_stack {
                        self.stats.data_l2_writebacks += 1;
                    }
                }
                if l2_hit {
                    self.stats.l2.hits += 1;
                } else {
                    self.stats.l2.misses += 1;
                    if !stack {
                        self.stats.data_l2_fills += 1;
                    }
                }
            }
        }
    }

    /// Write back every still-resident dirty line (L1 first, so its
    /// write-backs land in L2 before L2 drains), leaving residency and
    /// LRU order untouched. Call before reading [`CacheSim::stats`] when
    /// end-of-run store traffic must be on the books — a kernel's final
    /// results sit dirty in cache until something forces them out.
    pub fn flush(&mut self) {
        for (line, stack) in self.l1.drain_dirty() {
            self.writeback_from_l1(line, stack);
        }
        for (_, stack) in self.l2.drain_dirty() {
            self.stats.l2.writebacks += 1;
            if !stack {
                self.stats.data_l2_writebacks += 1;
            }
        }
    }

    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Back to a cold cache with zeroed counters.
    pub fn reset(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.stats = MemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_arch::{CacheHierarchy, CacheLevel};

    fn tiny() -> CacheSim {
        // 2 sets × 2 ways × 64B lines = 256B L1; 1KB L2
        CacheSim::new(CacheHierarchy {
            line_bytes: 64,
            l1: CacheLevel {
                size_bytes: 256,
                assoc: 2,
            },
            l2: CacheLevel {
                size_bytes: 1024,
                assoc: 4,
            },
        })
    }

    #[test]
    fn bytes_and_word_counts() {
        let mut s = tiny();
        s.access(0, 8, false, false);
        s.access(8, 8, true, false);
        s.access(64, 16, false, false);
        let st = s.stats();
        assert_eq!(st.loads, 2);
        assert_eq!(st.stores, 1);
        assert_eq!(st.load_bytes, 24);
        assert_eq!(st.store_bytes, 8);
        assert_eq!(st.total_bytes(), 32);
        assert_eq!(st.data_bytes(), 32, "no stack accesses yet");
    }

    #[test]
    fn data_vs_stack_byte_split() {
        let mut s = tiny();
        s.access(0, 8, false, false); // data load
        s.access(1 << 20, 8, true, true); // stack store (spill)
        s.access(8, 16, true, false); // data store
        let st = s.stats();
        assert_eq!(st.load_bytes, 8);
        assert_eq!(st.store_bytes, 24);
        assert_eq!(st.data_load_bytes, 8);
        assert_eq!(st.data_store_bytes, 16, "the spill store is excluded");
        assert_eq!(st.data_bytes(), 24);
    }

    #[test]
    fn same_line_hits_after_cold_fill() {
        let mut s = tiny();
        s.access(0, 8, false, false);
        for i in 1..8 {
            s.access(i * 8, 8, false, false);
        }
        let st = s.stats();
        assert_eq!(st.l1.misses, 1, "one cold fill for the line");
        assert_eq!(st.l1.hits, 7);
        assert_eq!(st.l2.misses, 1);
        assert_eq!(st.data_l1_fills, 1);
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut s = tiny();
        // set 0 holds lines 0, 2, 4, ... (2 sets); fill both ways
        s.access(0, 8, false, false); // line 0 → miss
        s.access(128, 8, false, false); // line 2 → miss
        s.access(0, 8, false, false); // line 0 → hit, now MRU
        s.access(256, 8, false, false); // line 4 → miss, evicts line 2
        s.access(0, 8, false, false); // line 0 still resident → hit
        s.access(128, 8, false, false); // line 2 evicted → miss, but L2 hit
        let st = s.stats();
        assert_eq!(st.l1.misses, 4);
        assert_eq!(st.l1.hits, 2);
        assert_eq!(st.l2.misses, 3, "only the cold misses reach memory");
        assert_eq!(st.l2.hits, 1);
        assert_eq!(st.l1.writebacks, 0, "clean evictions write nothing back");
    }

    #[test]
    fn straddling_access_touches_both_lines() {
        let mut s = tiny();
        s.access(56, 16, false, false); // crosses the 64-byte boundary
        let st = s.stats();
        assert_eq!(st.l1.misses, 2);
        assert_eq!(st.load_bytes, 16);
    }

    #[test]
    fn stack_fills_tallied_separately() {
        let mut s = tiny();
        s.access(0, 8, false, false);
        s.access(1 << 20, 8, true, true);
        let st = s.stats();
        assert_eq!(st.data_l1_fills, 1);
        assert_eq!(st.stack_l1_fills, 1);
        assert_eq!(st.l1.misses, 2);
        assert_eq!(st.data_l2_fills, 1, "only the data line counts");
    }

    #[test]
    fn stack_writebacks_excluded_from_data_counters() {
        // one dirty data line and one dirty stack line, both flushed: the
        // totals see two write-backs per level, the data counters one —
        // frame spill traffic must never reach the roofline's deeper
        // ceilings
        let mut s = tiny();
        s.access(0, 8, true, false); // data store
        s.access(1 << 20, 8, true, true); // stack spill store
        s.flush();
        let st = s.stats();
        assert_eq!(st.l1.writebacks, 2);
        assert_eq!(st.l2.writebacks, 2);
        assert_eq!(st.data_l1_writebacks, 1, "{st:?}");
        assert_eq!(st.data_l2_writebacks, 1, "{st:?}");
        assert_eq!(st.data_beyond_l1_bytes(64), (1 + 1) * 64);
        assert_eq!(st.beyond_l1_bytes(64), (2 + 2) * 64);
    }

    #[test]
    fn dirty_eviction_writes_back_and_marks_l2() {
        let mut s = tiny();
        s.access(0, 8, true, false); // line 0 dirty in L1
        s.access(128, 8, false, false); // line 2 fills the other way
        s.access(256, 8, false, false); // line 4 evicts line 0 (LRU) → wb
        let st = s.stats();
        assert_eq!(st.l1.writebacks, 1, "dirty line 0 written back to L2");
        assert_eq!(st.l2.writebacks, 0, "L2 still holds it — absorbed");
        // bring line 0 back: it must come from L2 (hit), not memory
        s.access(0, 8, false, false);
        assert_eq!(s.stats().l2.hits, 1);
        // flushing now drains the re-dirtied L2 copy
        s.flush();
        assert_eq!(s.stats().l2.writebacks, 1, "L2's dirty copy reaches memory");
    }

    #[test]
    fn writeback_passes_through_when_l2_evicted_the_line() {
        // L1 keeps a dirty line alive while 4 other lines of the same L2
        // set march through L2 and evict its copy; the eventual L1
        // eviction then writes back straight to memory
        let mut s = tiny();
        s.access(0, 8, true, false); // line 0 dirty in L1 (set 0 of both)
        // lines 8,16,24,32 map to L2 set 0 (8 sets… L2: 1024/64/4 = 4 sets)
        // pick lines ≡ 0 mod 4 for L2 set 0: 4, 8, 12, 16 → addrs 256·k
        for k in 1..=4u64 {
            // L1 set of line 4k alternates; keep line 0 in L1 by touching it
            s.access(0, 8, false, false);
            s.access(4 * k * 64, 8, false, false);
        }
        // L2 set 0 now holds {16,12,8,4}: line 0 was evicted clean from L2
        // evict line 0 from its L1 set (set 0 holds {0, even lines…}):
        // lines 2 and 4 are already there; touch two fresh even lines
        s.access(6 * 64, 8, false, false);
        s.access(10 * 64, 8, false, false);
        let st = s.stats();
        assert_eq!(st.l1.writebacks, 1, "dirty line 0 left L1");
        assert_eq!(
            st.l2.writebacks, 1,
            "L2 no longer held line 0 — write-back passed through to memory"
        );
    }

    #[test]
    fn flush_drains_dirty_lines_once_and_keeps_residency() {
        let mut s = tiny();
        s.access(0, 8, true, false);
        s.access(64, 8, true, false);
        s.access(128, 8, false, false);
        s.flush();
        let st = s.stats();
        assert_eq!(st.l1.writebacks, 2, "both dirty lines drained");
        assert_eq!(st.l2.writebacks, 2, "…and propagated to memory");
        // idempotent: nothing left dirty
        s.flush();
        assert_eq!(s.stats().l1.writebacks, 2);
        // lines stayed resident: re-touching them hits
        s.access(0, 8, false, false);
        s.access(64, 8, false, false);
        assert_eq!(s.stats().l1.misses, 3, "no new misses after flush");
    }

    #[test]
    fn streaming_store_traffic_equals_store_bytes() {
        // stream a 16KiB array (≫ 256B L1, ≫ 1KB L2) with stores: after a
        // flush, every stored byte has crossed both boundaries exactly
        // once — fills (write-allocate) plus write-backs
        let mut s = tiny();
        let lines = 256u64;
        for i in 0..lines * 8 {
            s.access(i * 8, 8, true, false);
        }
        s.flush();
        let st = s.stats();
        assert_eq!(st.l1.misses, lines);
        assert_eq!(st.l1.writebacks, lines, "every line was dirty");
        assert_eq!(st.l2.writebacks, lines);
        assert_eq!(st.beyond_l1_bytes(64), 2 * st.store_bytes);
        assert_eq!(st.beyond_l2_bytes(64), 2 * st.store_bytes);
    }

    #[test]
    fn reset_is_cold() {
        let mut s = tiny();
        s.access(0, 8, true, false);
        s.access(0, 8, false, false);
        assert_eq!(s.stats().l1.hits, 1);
        s.reset();
        assert_eq!(s.stats(), MemStats::default());
        s.access(0, 8, false, false);
        assert_eq!(s.stats().l1.misses, 1, "cache content was cleared");
        s.flush();
        assert_eq!(s.stats().l1.writebacks, 0, "dirty bits were cleared too");
    }

    #[test]
    fn streaming_fills_equal_footprint_when_resident() {
        // default hierarchy: 3 arrays of 1024 doubles fit L1 entirely →
        // cold fills = 3 · 8KiB/64 = 384 no matter how many sweeps
        let mut s = CacheSim::new(CacheHierarchy::default());
        let base = [0u64, 8192, 16384];
        for _ in 0..3 {
            for i in 0..1024u64 {
                for b in base {
                    s.access(b + i * 8, 8, false, false);
                }
            }
        }
        assert_eq!(s.stats().data_l1_fills, 384);
        assert_eq!(s.stats().l1.misses, 384);
        assert_eq!(s.stats().l1.writebacks, 0, "loads never dirty a line");
    }
}
