//! # mira-mem — memory-traffic models and the VM cache simulator
//!
//! Mira's headline derived metric is arithmetic intensity (paper §IV-D2,
//! Fig. 6), but instruction ratios alone cannot anchor a roofline: that
//! takes *bytes moved through the memory hierarchy*. This crate adds the
//! missing axis with two halves that are validated against each other:
//!
//! * **Static half.** The metric generator (`mira-core`) attributes every
//!   explicit memory instruction of the binary to its source statement
//!   with an exact polyhedral execution count, and emits
//!   `ModelOp::MemAcc`/`FlopAcc` ops; `mira_model::Model` evaluates them
//!   to closed-form load/store **bytes** and packed-aware FLOPs
//!   ([`mira_model::Report::bytes_arithmetic_intensity`]). On top of
//!   that, [`access`] derives each array reference's affine access
//!   function over its SCoP and predicts the **distinct cache lines**
//!   touched per array — stride- and vector-width-aware, composed across
//!   calls, exact for dense affine coverage
//!   ([`access::FuncFootprints`]) — and refines the per-function total
//!   into a **per-nest working-set model** ([`access::NestModel`]): the
//!   distinct-line working set of one iteration of every enclosing loop
//!   level (the affine ranges with outer loop variables pinned at their
//!   first iteration), from which the traffic crossing any cache
//!   boundary follows — reuse captured above the boundary is compulsory,
//!   uncaptured re-sweeps multiply, stencil offsets fall back to
//!   per-access counts when their carried reuse escapes.
//! * **Dynamic half.** [`cachesim::CacheSim`] is a two-level
//!   set-associative LRU simulator the VM hangs off its load/store path
//!   when `VmOptions::mem_profile` is set (mirrored in `ReferenceVm`, so
//!   the differential tests stay bit-identical with instrumentation on or
//!   off). It counts per-level hits/misses and load/store bytes under the
//!   same accounting contract (`mira_isa::Inst::memory_bytes`): explicit
//!   memory operands only, no `push`/`pop` or return-address traffic.
//!
//! The two halves agree by construction wherever the instruction-count
//! models are exact: static bytes equal simulated bytes on the affine
//! subset, and static distinct-line footprints equal simulated cold-cache
//! L1 *data* fills for streaming kernels (`crates/workloads` pins both on
//! STREAM, DGEMM and miniFE cg_solve; `bench_mem` records the trajectory
//! in `BENCH_mem.json`).
//!
//! ## Budgets and degradation
//!
//! Every symbolically expensive entry point of the static half —
//! per-function access analysis, footprint resolution, working-set
//! model construction — runs under an analysis budget
//! ([`mira_sym::budget`]): a fuel limit on symbolic term construction
//! and a depth limit on recursion. A tripped budget never aborts the
//! analysis; it *degrades along the refusal chain the models already
//! have*. A refused function is summarized with every pointer parameter
//! unknown (so its footprint is not exact), footprint resolution falls
//! back to the unknown-set summary, and a refused nest model returns
//! `None` — which downstream roofline placement already treats as "use
//! the conservative streaming sweep". Adversarial nests therefore cost
//! precision, never correctness, and never a hang or a blown stack.

pub mod access;
pub mod cachesim;

pub use access::{
    analyze_program, AccessModel, ArrayFootprint, BoundaryTraffic, FuncFootprints, GroupExpr,
    GroupShape, NestGroup, NestModel, NestNode, NestShape,
};
pub use cachesim::{CacheSim, LevelStats, MemStats};

use mira_core::Analysis;
use mira_sym::Bindings;

/// One row of the per-function memory-traffic rollup (the bytes analogue
/// of the Table-II category table).
#[derive(Clone, Debug)]
pub struct TrafficRow {
    pub line: u32,
    pub load_bytes: i128,
    pub store_bytes: i128,
}

/// Statement-level memory-traffic table of one function under concrete
/// parameter bindings, descending by total traffic.
pub fn traffic_table(
    analysis: &Analysis,
    func: &str,
    bindings: &Bindings,
) -> Result<Vec<TrafficRow>, mira_model::ModelError> {
    let report = analysis.report(func, bindings)?;
    let mut rows: Vec<TrafficRow> = report
        .line_bytes
        .iter()
        .map(|(line, (l, s))| TrafficRow {
            line: *line,
            load_bytes: *l,
            store_bytes: *s,
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.load_bytes + r.store_bytes));
    Ok(rows)
}

/// Distinct-line footprints for `func`, derived from the analysis'
/// source program. (For the per-nest working-set model, build one
/// [`AccessModel`] with [`analyze_program`] and call
/// [`AccessModel::nest_model`] on it — footprints and nest model then
/// share the analysis.)
pub fn footprints(analysis: &Analysis, func: &str) -> FuncFootprints {
    analyze_program(&analysis.program).footprint(func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_core::{analyze_source, MiraOptions};
    use mira_sym::bindings;

    #[test]
    fn traffic_table_rolls_up_per_line() {
        let src = "double dot(int n, double* x, double* y) {\n\
                   double s = 0.0;\n\
                   for (int i = 0; i < n; i++) {\n\
                   s += x[i] * y[i];\n\
                   }\n\
                   return s;\n}";
        let analysis = analyze_source(src, &MiraOptions::default()).unwrap();
        let b = bindings(&[("n", 1000)]);
        let rows = traffic_table(&analysis, "dot", &b).unwrap();
        assert!(!rows.is_empty());
        // the kernel line (4) dominates: it loads x[i] and y[i] every
        // iteration — at least 16 bytes per element
        assert_eq!(rows[0].line, 4);
        assert!(rows[0].load_bytes >= 16_000, "{rows:?}");
        // and the whole-function report agrees with the rollup total
        let report = analysis.report("dot", &b).unwrap();
        let sum: i128 = rows.iter().map(|r| r.load_bytes + r.store_bytes).sum();
        assert_eq!(sum, report.total_bytes());
        assert_eq!(report.flops, 2000);
    }

    #[test]
    fn footprints_from_analysis() {
        let src = "void scale(int n, double* b, double* c, double s) {\n\
                   for (int i = 0; i < n; i++) { b[i] = s * c[i]; }\n}";
        let analysis = analyze_source(src, &MiraOptions::default()).unwrap();
        let fp = footprints(&analysis, "scale");
        assert!(fp.is_exact(64));
        let b = bindings(&[("n", 512)]);
        assert_eq!(fp.total_lines_expr(64).eval_count(&b).unwrap(), 128);
    }
}
