//! The static half of `mira-mem`: affine array access functions and
//! closed-form *distinct cache line* footprints.
//!
//! For every array reference inside a SCoP (`a[2*i + 3]`, `b[i*n + j]`,
//! ...) the analyzer derives the affine access function over the loop
//! nest's iteration domain, computes the index range by interval
//! substitution of the polyhedral bounds, checks that the nest covers the
//! range densely at cache-line granularity (stride- and vector-width-aware:
//! any stride ≤ the line size touches every line in the range, and a
//! packed access is just two adjacent elements), and folds the per-nest
//! ranges into one footprint per array. Footprints compose across calls by
//! substituting actual for formal parameters and uniting ranges, so
//! `cg_solve`'s prediction covers the arrays its callees stream.
//!
//! The closed forms assume cache-line-aligned array bases — which the VM
//! host allocator guarantees — so `⌈bytes/line⌉`-style expressions are
//! exact, not estimates. References whose index is not affine in the loop
//! variables and function parameters (CSR indirection `x[cols[k]]`,
//! mutated scalar locals) poison that array: it is reported in
//! [`FuncFootprints::unknown`] and the function's total is flagged
//! approximate, mirroring the paper's annotation-required cases.
//!
//! Two `#pragma @Annotation` keys let the user close those cases the same
//! way `lp_iters` closes data-dependent trip counts:
//!
//! * `lp_cumulative: yes` on an annotated data-dependent loop asserts its
//!   induction variable sweeps a *cumulative prefix* across the enclosing
//!   nest (the CSR pattern: `for (k = row_ptr[i]; k < row_ptr[i+1]; …)`
//!   covers `[0, nnz)` densely over all rows). The loop then becomes a
//!   synthetic affine dimension of extent `enclosing-trip-count ·
//!   lp_iters · lp_scale`, and arrays it indexes directly (`vals[k]`,
//!   `cols[k]`) get exact dense footprints.
//! * `idx_extent: n` bounds every *remaining* unanalyzable subscript in
//!   the annotated loop's body to `[0, n-1]` (the gather `x[cols[k]]`
//!   reads some subset of an `n`-vector). The bounded array is counted at
//!   that range but never claims dense coverage — an upper bound, like
//!   guarded references.

use mira_core::scop::{extract_for_scop, LoopScope};
use mira_minic::{AnnotValue, Annotation, BinOp, Expr, ExprKind, Func, Program, Stmt, StmtKind, UnOp};
use mira_sym::{Bindings, EvalError, Rat, SymExpr};
use std::collections::BTreeMap;

/// Every VX86 array element (double or 64-bit int) is 8 bytes wide.
pub const ELEM_BYTES: i64 = 8;

/// The distinct-line footprint of one array within one function (own
/// references and resolved callee references united).
#[derive(Clone, Debug)]
pub struct ArrayFootprint {
    /// Pointer parameter (or local) naming the array in this function.
    pub array: String,
    /// Smallest element index accessed (inclusive), in function params.
    pub min_index: SymExpr,
    /// Largest element index accessed (inclusive), in function params.
    pub max_index: SymExpr,
    /// Accessed by loads / by stores.
    pub loaded: bool,
    pub stored: bool,
    /// `Some(s)`: the range is provably covered with no gap wider than
    /// `s` bytes (dense chain of strides, no control-flow guard, ranges
    /// connected, sign-decidable arithmetic). `None`: coverage unproven —
    /// [`ArrayFootprint::lines_expr`] is then an upper bound.
    pub stride_bytes: Option<i128>,
}

impl ArrayFootprint {
    /// Is the distinct-line count exact at this line size? True when the
    /// coverage gap fits in one line and the allocator's 64-byte base
    /// alignment implies line alignment (line sizes above 64 would break
    /// that assumption, so they are never claimed exact).
    pub fn exact_for(&self, line_bytes: u32) -> bool {
        line_bytes <= 64 && matches!(self.stride_bytes, Some(s) if s <= line_bytes as i128)
    }
    /// Closed-form count of distinct cache lines touched, assuming the
    /// array base is line-aligned: `⌊(E·max + E − 1)/L⌋ − ⌊E·min/L⌋ + 1`.
    pub fn lines_expr(&self, line_bytes: u32) -> SymExpr {
        range_lines_expr(&self.min_index, &self.max_index, line_bytes)
    }

    /// Extent of the accessed range in bytes.
    pub fn extent_bytes_expr(&self) -> SymExpr {
        self.max_index
            .sub_expr(&self.min_index)
            .add_expr(&SymExpr::constant(1))
            .scale(Rat::int(ELEM_BYTES as i128))
    }
}

/// Closed-form distinct-line count of an inclusive element index range
/// `[min, max]` on a line-aligned base: `⌊(E·max + E − 1)/L⌋ − ⌊E·min/L⌋
/// + 1`.
pub fn range_lines_expr(min_index: &SymExpr, max_index: &SymExpr, line_bytes: u32) -> SymExpr {
    let l = line_bytes as i64;
    let last = max_index
        .scale(Rat::int(ELEM_BYTES as i128))
        .add_expr(&SymExpr::constant(ELEM_BYTES as i128 - 1))
        .floor_div(l);
    let first = min_index.scale(Rat::int(ELEM_BYTES as i128)).floor_div(l);
    last.sub_expr(&first).add_expr(&SymExpr::constant(1))
}

/// All footprints of one function, callee references included.
#[derive(Clone, Debug, Default)]
pub struct FuncFootprints {
    pub arrays: Vec<ArrayFootprint>,
    /// Arrays with at least one statically unanalyzable reference
    /// (data-dependent indices, unanalyzable loop bounds, non-var callee
    /// arguments).
    pub unknown: Vec<String>,
}

impl FuncFootprints {
    pub fn array(&self, name: &str) -> Option<&ArrayFootprint> {
        self.arrays.iter().find(|a| a.array == name)
    }

    /// Closed form for the total distinct lines across all analyzed
    /// arrays (arrays never share lines: the allocator aligns each base).
    pub fn total_lines_expr(&self, line_bytes: u32) -> SymExpr {
        let mut total = SymExpr::zero();
        for a in &self.arrays {
            total = total.add_expr(&a.lines_expr(line_bytes));
        }
        total
    }

    /// Is the total exact at this line size — every array analyzed,
    /// densely covered?
    pub fn is_exact(&self, line_bytes: u32) -> bool {
        self.unknown.is_empty() && self.arrays.iter().all(|a| a.exact_for(line_bytes))
    }
}

/// Per-function access summaries plus the call edges needed to resolve
/// footprints interprocedurally.
pub struct AccessModel {
    functions: BTreeMap<String, FuncInfo>,
}

struct FuncInfo {
    /// Ordered parameter names, `Some(name)` for pointer params.
    ptr_params: Vec<Option<String>>,
    value_params: Vec<String>,
    /// This function's own (safe) references, one entry per reference.
    refs: Vec<RawRef>,
    unknown: Vec<String>,
    calls: Vec<CallSite>,
    /// The function's loop forest (parents before children), for the
    /// per-nest working-set model.
    nodes: Vec<NodeBuild>,
    /// Own references with their nest context — the inputs of
    /// [`AccessModel::nest_model`].
    nest_refs: Vec<NestRef>,
    /// Some traffic escaped the nest bookkeeping (guarded or bounded
    /// references, unanalyzable loops): the per-nest model would
    /// under-count, so it is not built.
    nest_tainted: bool,
}

/// One loop of the function's loop forest as recorded by the walker; it
/// outlives the walk (unlike the [`LoopDim`] stack) so working sets can
/// be derived per nest level afterwards.
#[derive(Clone)]
struct NodeBuild {
    parent: Option<usize>,
    /// Renamed (unique) induction variable.
    var: String,
    lo: SymExpr,
    hi: SymExpr,
    step: i64,
}

impl NodeBuild {
    /// Trip count `(hi - lo)/step + 1`, in outer domain variables.
    fn extent(&self) -> SymExpr {
        let span = self.hi.sub_expr(&self.lo);
        if self.step > 1 {
            span.floor_div(self.step).add_expr(&SymExpr::constant(1))
        } else {
            span.add_expr(&SymExpr::constant(1))
        }
    }
}

/// One own array reference with its nest context: the enclosing loop
/// path and the index range at every pin depth.
#[derive(Clone)]
struct NestRef {
    array: String,
    /// Node ids of the enclosing loops, outermost first.
    path: Vec<usize>,
    /// `ranges[l]` is the index range with the outermost `l` loops of
    /// `path` pinned at their first iteration and the rest swept — the
    /// working-set ladder (`ranges[0]` is the full-sweep range). For
    /// affine references this ladder is recomputed from `idx` when the
    /// model is built (so composition and triangular pinning see one
    /// code path); for `gather` references it is the recorded flat
    /// bound, the only range the analysis has.
    ranges: Vec<(SymExpr, SymExpr)>,
    /// The affine access function itself (domain variables renamed);
    /// for `gather` references an opaque placeholder.
    idx: SymExpr,
    stored: bool,
    /// See [`ArrayFootprint::stride_bytes`] (full-sweep dense coverage).
    stride_bytes: Option<i128>,
    /// A data-dependent subscript bounded by `idx_extent`: the range is
    /// a coverage-unproven upper bound that moves with no loop, and the
    /// traffic model must cap its fills at the access count instead of
    /// multiplying by every enclosing extent.
    gather: bool,
}

#[derive(Clone)]
struct RawRef {
    array: String,
    min: SymExpr,
    max: SymExpr,
    loaded: bool,
    stored: bool,
    /// See [`ArrayFootprint::stride_bytes`].
    stride_bytes: Option<i128>,
}

struct CallSite {
    callee: String,
    /// Caller-side expression per callee parameter position: pointer
    /// params map to the caller's array name, value params to an affine
    /// expression. `Err(())` marks an unanalyzable argument.
    args: Vec<Result<Arg, ()>>,
    /// Node ids of the loops enclosing the call site, outermost first —
    /// the splice point for nest-group composition.
    path: Vec<usize>,
    /// The call sits under an `if`/unannotated-`while` guard: its traffic
    /// cannot be attributed to a nest level, so composition refuses.
    guarded: bool,
}

enum Arg {
    Ptr(String),
    Value(SymExpr),
}

/// Analyze every function of a program.
///
/// Each function is analyzed under a [`mira_sym::budget`] scope: a
/// function whose symbolic analysis trips the budget (adversarial nest
/// depth, huge constants, term explosion) is recorded as a conservative
/// refusal — every pointer parameter unknown, the nest model tainted —
/// so downstream consumers degrade to the streaming sweep model instead
/// of hanging or panicking.
pub fn analyze_program(program: &Program) -> AccessModel {
    let _sp = mira_probe::span("mem.analyze_program", "mem");
    let mut functions = BTreeMap::new();
    for f in program.functions() {
        let mut sp = mira_probe::span("mem.analyze_func", "mem");
        sp.arg("func", &f.name);
        let analyzed = mira_sym::budget::with_default_budget(|| analyze_func(f));
        if analyzed.is_err() {
            sp.arg("refused", "budget");
            mira_probe::add("mem.func_refusals", 1);
        }
        let info = analyzed.unwrap_or_else(|_| refused_func_info(f));
        functions.insert(f.name.clone(), info);
    }
    AccessModel { functions }
}

/// The conservative stand-in for a function whose analysis tripped the
/// budget: nothing analyzed, every pointer parameter unknown.
fn refused_func_info(f: &Func) -> FuncInfo {
    let ptr_params: Vec<Option<String>> = f
        .params
        .iter()
        .map(|p| p.ty.is_pointer().then(|| p.name.clone()))
        .collect();
    let unknown: Vec<String> = ptr_params.iter().flatten().cloned().collect();
    FuncInfo {
        ptr_params,
        value_params: Vec::new(),
        refs: Vec::new(),
        unknown,
        calls: Vec::new(),
        nodes: Vec::new(),
        nest_refs: Vec::new(),
        nest_tainted: true,
    }
}

impl AccessModel {
    /// Resolve the footprint of `func`, composing callees (their formals
    /// substituted by the actual arguments, ranges united per caller-side
    /// array).
    pub fn footprint(&self, func: &str) -> FuncFootprints {
        let mut sp = mira_probe::span("mem.footprint", "mem");
        sp.arg("func", func);
        // Interprocedural resolution (substitution + range unions) can
        // blow up on adversarial call graphs; a budget trip degrades to
        // "everything unknown", the conservative refusal.
        mira_sym::budget::with_default_budget(|| self.resolve(func, 0)).unwrap_or_else(|_| {
            let unknown = self
                .functions
                .get(func)
                .map(|info| info.ptr_params.iter().flatten().cloned().collect())
                .unwrap_or_default();
            FuncFootprints {
                arrays: Vec::new(),
                unknown,
            }
        })
    }

    fn resolve(&self, func: &str, depth: u32) -> FuncFootprints {
        let mut out = FuncFootprints::default();
        let Some(info) = self.functions.get(func) else {
            return out;
        };
        if depth > 32 {
            return out;
        }
        let mut by_array: BTreeMap<String, ArrayFootprint> = BTreeMap::new();
        let mut unknown: Vec<String> = info.unknown.clone();
        for r in &info.refs {
            union_ref(&mut by_array, &mut unknown, r.clone());
        }
        for call in &info.calls {
            let Some(callee) = self.functions.get(&call.callee) else {
                continue;
            };
            let sub = self.resolve(&call.callee, depth + 1);
            // formal → actual maps for this call site
            let mut ptr_map: BTreeMap<&str, Result<&str, ()>> = BTreeMap::new();
            let mut val_map: BTreeMap<&str, Result<&SymExpr, ()>> = BTreeMap::new();
            for (i, formal) in callee.ptr_params.iter().enumerate() {
                let actual = call.args.get(i);
                if let Some(name) = formal {
                    let v = match actual {
                        Some(Ok(Arg::Ptr(p))) => Ok(p.as_str()),
                        _ => Err(()),
                    };
                    ptr_map.insert(name, v);
                }
            }
            {
                let mut vi = 0;
                for (i, formal) in callee.ptr_params.iter().enumerate() {
                    if formal.is_none() {
                        let name = &callee.value_params[vi];
                        vi += 1;
                        let v = match call.args.get(i) {
                            Some(Ok(Arg::Value(e))) => Ok(e),
                            _ => Err(()),
                        };
                        val_map.insert(name, v);
                    }
                }
            }
            let map_expr = |e: &SymExpr| -> Result<SymExpr, ()> {
                let mut out = e.clone();
                for p in e.params() {
                    if let Some(v) = val_map.get(p.as_str()) {
                        out = out.substitute(&p, (*v)?);
                    }
                    // params not bound at this site (annotation parameters
                    // like cg_iters) pass through unchanged
                }
                Ok(out)
            };
            for fp in &sub.arrays {
                match ptr_map.get(fp.array.as_str()) {
                    Some(Ok(caller_name)) => {
                        match (map_expr(&fp.min_index), map_expr(&fp.max_index)) {
                            (Ok(mn), Ok(mx)) => union_ref(
                                &mut by_array,
                                &mut unknown,
                                RawRef {
                                    array: caller_name.to_string(),
                                    min: mn,
                                    max: mx,
                                    loaded: fp.loaded,
                                    stored: fp.stored,
                                    stride_bytes: fp.stride_bytes,
                                },
                            ),
                            _ => unknown.push(caller_name.to_string()),
                        }
                    }
                    // an argument we could not map to a caller array still
                    // carries real traffic — it must surface as unknown,
                    // never silently vanish from the footprint
                    _ => unknown.push(format!("{}::{}", call.callee, fp.array)),
                }
            }
            for u in &sub.unknown {
                match ptr_map.get(u.as_str()) {
                    Some(Ok(caller_name)) => unknown.push(caller_name.to_string()),
                    _ => unknown.push(format!("{}::{u}", call.callee)),
                }
            }
        }
        unknown.sort();
        unknown.dedup();
        out.arrays = by_array.into_values().collect();
        out.unknown = unknown;
        out
    }
}

// ---- per-nest working-set (reuse-distance) model ----

/// One loop of a function's loop forest as the per-nest model exposes it
/// (parents precede children; roots have no parent).
#[derive(Clone, Debug)]
pub struct NestNode {
    pub parent: Option<usize>,
    /// Trip count, with every ancestor pinned at its first iteration.
    /// For a triangular loop (trip count affine in one rectangular
    /// ancestor's variable) this is the *average* extent over the
    /// ancestor's range — the midpoint substitution of
    /// [`mira_sym::sum::avg_over`] — so products of extents along a path
    /// stay exact total iteration counts.
    pub extent: SymExpr,
    /// One-iteration working set of this loop, in distinct cache lines:
    /// the loop's variable and every ancestor pinned at their first
    /// iteration, everything deeper swept — united per array, summed
    /// across arrays. The quantity a cache level must hold for all reuse
    /// *inside* one iteration of this loop to hit.
    pub ws_lines: SymExpr,
}

/// The traffic contribution of one array inside one loop nest: closed
/// forms for the lines it moves across a boundary in every capture
/// regime, plus the structure needed to pick the regime at evaluation
/// time.
#[derive(Clone, Debug)]
pub struct NestGroup {
    pub array: String,
    /// Enclosing loop node ids, outermost first (empty for straight-line
    /// references).
    pub path: Vec<usize>,
    pub stored: bool,
    /// Distinct lines of the union of the group's references over the
    /// full nest sweep — the compulsory fill count when reuse is
    /// captured.
    pub lines: SymExpr,
    /// Distinct lines of the union of the *stored* references (zero when
    /// nothing stores): each eventually crosses back down as a
    /// write-back.
    pub stored_lines: SymExpr,
    /// Sum of per-access-function distinct lines — the fallback count
    /// when inter-reference (stencil) reuse is *not* captured and each
    /// offset access re-fills its own range.
    pub sum_lines: SymExpr,
    pub sum_stored_lines: SymExpr,
    /// Per path level: does the reference range move with that loop's
    /// iterations? Independent levels re-touch the same lines, so an
    /// uncaptured independent loop multiplies the traffic.
    pub depends: Vec<bool>,
    /// Deepest capture level at which union counting stays valid: when
    /// `ℓ_fit` exceeds this, inter-reference (stencil) reuse escapes the
    /// cache and [`NestGroup::sum_lines`] applies. `usize::MAX` for
    /// single-access groups.
    pub union_capture_level: usize,
    /// Every reference's stride chain closes at the model's line size
    /// and the offset analysis resolved: the traffic counts are exact
    /// for a fully-associative LRU cache with clear capacity margins,
    /// not upper bounds.
    pub exact: bool,
    /// Data-dependent (gather) group: the references' target lines are
    /// unknown, only their `idx_extent` bound is. The flat recorded
    /// range looks loop-independent at every level, but one deeper
    /// iteration does *not* re-touch the whole range, so the
    /// leading-prefix capture shortcut is off and fills are additionally
    /// capped at the access count (each access misses at most once).
    pub gather: bool,
    /// Reference count per innermost iteration (all, stored) — the fill
    /// and write-back caps for gather groups; `(0, 0)` otherwise.
    pub gather_refs: (i64, i64),
}

/// Evaluated traffic crossing one hierarchy boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BoundaryTraffic {
    /// Lines filled across the boundary (compulsory + capacity misses).
    pub fill_lines: i128,
    /// Dirty lines written back across it.
    pub writeback_lines: i128,
}

impl BoundaryTraffic {
    /// Total lines crossing the boundary, both directions.
    pub fn total_lines(&self) -> i128 {
        self.fill_lines + self.writeback_lines
    }
}

/// The per-nest working-set traffic model of one function — the
/// reuse-distance refinement of the whole-footprint fits-or-streams
/// decision. For each array × nest group it answers: at a boundary whose
/// upper level holds `C` bytes, how many lines cross?
///
/// The capture level `ℓ_fit` of a group is the outermost nest level
/// whose one-iteration working set ([`NestNode::ws_lines`], *all* arrays
/// united) fits in `C`: all reuse inside one iteration of that loop
/// hits above the boundary. Loops outside the captured subtree replay
/// the subtree's traffic once per iteration when the group's range does
/// not move with them (cyclic re-sweeps of the same lines, evicted
/// between uses because the carried working set exceeds `C`); ranges
/// that do move are already counted once each by the distinct-line
/// union. Built by [`AccessModel::nest_model`].
#[derive(Clone, Debug)]
pub struct NestModel {
    pub nodes: Vec<NestNode>,
    pub groups: Vec<NestGroup>,
    pub line_bytes: u32,
}

/// The evaluator-independent skeleton of one [`NestGroup`]: everything
/// [`NestShape::traffic`] needs besides the closed-form line counts
/// themselves.
#[derive(Clone, Debug)]
pub struct GroupShape {
    /// Enclosing loop node ids, outermost first.
    pub path: Vec<usize>,
    /// Per path level: does the reference range move with that loop?
    pub depends: Vec<bool>,
    /// Deepest capture level at which union counting stays valid.
    pub union_capture_level: usize,
    /// Data-dependent (gather) group — see [`NestGroup::gather`].
    pub gather: bool,
    /// Reference count per innermost iteration (all, stored).
    pub gather_refs: (i64, i64),
}

/// Which closed form of a group [`NestShape::traffic`] is asking its
/// evaluator for. Requests arrive lazily, in evaluation order — an
/// evaluator must not eagerly evaluate forms that were never requested,
/// or its errors would diverge from the tree walk's.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GroupExpr {
    /// Index into [`NestShape::groups`] / [`NestModel::groups`].
    pub group: usize,
    /// Union (capture) count vs per-reference sum (uncaptured stencil).
    pub union: bool,
    /// Stored-lines (write-back) side vs all-lines (fill) side.
    pub stored: bool,
}

/// The `Send + Sync` skeleton of a [`NestModel`]: the regime-selection
/// logic of [`NestModel::boundary_traffic`] with the expression
/// evaluation abstracted out, so the tree-walk evaluator (here) and the
/// compiled serving evaluator (`mira-serve`) share one copy of the
/// selection rules and can never drift apart.
#[derive(Clone, Debug)]
pub struct NestShape {
    /// Number of loop nodes (the length `ws`/`ext` slices must have).
    pub n_nodes: usize,
    pub groups: Vec<GroupShape>,
    pub line_bytes: u32,
}

impl NestShape {
    /// The regime-selection core of [`NestModel::boundary_traffic`],
    /// over pre-evaluated per-node working sets (`ws`, line counts,
    /// rounded like `eval_count`) and extents (`ext`, rational, clamped
    /// at zero), with the per-group closed forms supplied lazily by
    /// `lines` — called only for the forms the selected regime needs,
    /// in evaluation order.
    pub fn traffic(
        &self,
        cap_bytes: u64,
        ws: &[i128],
        ext: &[Rat],
        mut lines: impl FnMut(GroupExpr) -> Result<i128, EvalError>,
    ) -> Result<BoundaryTraffic, EvalError> {
        let cap_lines = (cap_bytes / self.line_bytes.max(1) as u64) as i128;
        // round half away from zero, matching `SymExpr::eval_count`
        let round = |r: Rat| -> Result<i128, EvalError> {
            r.round_count().ok_or(EvalError::Overflow)
        };
        let mut t = BoundaryTraffic::default();
        for (gi, g) in self.groups.iter().enumerate() {
            let depth = g.path.len();
            // the capture level: the outermost nest level whose
            // one-iteration working set fits above the boundary
            let mut fit = depth + 1;
            for l in 1..=depth {
                if ws[g.path[l - 1]] <= cap_lines {
                    fit = l;
                    break;
                }
            }
            // uncaptured independent loops replay the traffic. The
            // reuse an independent level carries is separated by one
            // iteration of the *deepest* loop that still touches the
            // group's whole range — the leading-independent prefix `d`:
            // as long as capture reaches that depth (`fit ≤ needed`),
            // the lines are re-touched before anything can evict them
            // and no outer level multiplies. Gather ranges are bounds,
            // not sweeps — one deeper iteration touches a single line of
            // the range — so the prefix shortcut does not apply to them.
            let d = g.depends.iter().take_while(|dep| !**dep).count();
            let mut mult = Rat::ONE;
            for j in 0..depth {
                if g.depends[j] {
                    continue;
                }
                let needed = if g.gather {
                    j + 1
                } else if j < d {
                    d
                } else {
                    j + 1
                };
                if fit > needed {
                    mult = mult
                        .checked_mul(ext[g.path[j]])
                        .ok_or(EvalError::Overflow)?;
                }
            }
            let union = fit <= g.union_capture_level;
            let mut scaled = |stored: bool| -> Result<i128, EvalError> {
                let q = GroupExpr {
                    group: gi,
                    union,
                    stored,
                };
                round(
                    Rat::int(lines(q)?.max(0))
                        .checked_mul(mult)
                        .ok_or(EvalError::Overflow)?,
                )
            };
            let mut fills = scaled(false)?;
            let mut wbs = scaled(true)?;
            if g.gather {
                // each access fills at most one line and dirties at most
                // one line, however small the bounded range
                let mut iters = Rat::ONE;
                for &p in &g.path {
                    iters = iters.checked_mul(ext[p]).ok_or(EvalError::Overflow)?;
                }
                let cap_at = |count: i64| -> Result<i128, EvalError> {
                    round(
                        Rat::int(count as i128)
                            .checked_mul(iters)
                            .ok_or(EvalError::Overflow)?,
                    )
                };
                fills = fills.min(cap_at(g.gather_refs.0)?);
                wbs = wbs.min(cap_at(g.gather_refs.1)?);
            }
            t.fill_lines += fills;
            t.writeback_lines += wbs;
        }
        Ok(t)
    }
}

impl NestModel {
    /// Every group's traffic count is exact (dense affine coverage,
    /// resolved stencil offsets) rather than an upper bound.
    pub fn exact(&self) -> bool {
        self.groups.iter().all(|g| g.exact)
    }

    /// The evaluator-independent skeleton: group structure without the
    /// closed forms. `Send + Sync`, so a precompiled serving index can
    /// carry it across worker threads while the `SymExpr`s stay behind.
    pub fn shape(&self) -> NestShape {
        NestShape {
            n_nodes: self.nodes.len(),
            groups: self
                .groups
                .iter()
                .map(|g| GroupShape {
                    path: g.path.clone(),
                    depends: g.depends.clone(),
                    union_capture_level: g.union_capture_level,
                    gather: g.gather,
                    gather_refs: g.gather_refs,
                })
                .collect(),
            line_bytes: self.line_bytes,
        }
    }

    /// The closed form a [`GroupExpr`] request names.
    pub fn group_expr(&self, q: GroupExpr) -> &SymExpr {
        let g = &self.groups[q.group];
        match (q.union, q.stored) {
            (true, false) => &g.lines,
            (true, true) => &g.stored_lines,
            (false, false) => &g.sum_lines,
            (false, true) => &g.sum_stored_lines,
        }
    }

    /// Line traffic crossing a hierarchy boundary whose above-capacity
    /// is `cap_bytes`, at concrete parameter values. The caller is
    /// expected to have short-circuited the fully-resident case (whole
    /// footprint ≤ capacity) to the compulsory-only count; this method
    /// handles every partial-capture regime in between, down to full
    /// streaming. The regime selection itself lives in
    /// [`NestShape::traffic`]; this wrapper supplies the tree-walk
    /// evaluator.
    pub fn boundary_traffic(
        &self,
        cap_bytes: u64,
        b: &Bindings,
    ) -> Result<BoundaryTraffic, EvalError> {
        let mut ws = Vec::with_capacity(self.nodes.len());
        let mut ext = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            ws.push(n.ws_lines.eval_count(b)?);
            // extents stay rational: a triangular loop's average extent
            // is a half-integer, and only the final per-group product is
            // rounded (the product over a full path is always integral)
            let e = n.extent.eval(b)?;
            ext.push(if e < Rat::ZERO { Rat::ZERO } else { e });
        }
        self.shape()
            .traffic(cap_bytes, &ws, &ext, |q| self.group_expr(q).eval_count(b))
    }
}

/// Pin every ancestor loop variable of `start`'s chain inside `e` at its
/// first iteration (ancestors resolve outward, so triangular bounds
/// collapse to closed forms in function parameters).
fn pin_ancestors(
    nodes: &[NodeBuild],
    pinned_lo: &[SymExpr],
    start: Option<usize>,
    mut e: SymExpr,
) -> Option<SymExpr> {
    let mut p = start;
    while let Some(a) = p {
        let var = &nodes[a].var;
        if e.degree_in(var) > 0 {
            if e.degree_in(var) > 1 || e.param_in_composite_atom(var) {
                return None;
            }
            e = e.substitute(var, &pinned_lo[a]);
        }
        p = nodes[a].parent;
    }
    Some(e)
}

/// Is node `a` a strict ancestor of node `i` in the loop forest?
fn is_ancestor(nodes: &[NodeBuild], a: usize, mut i: usize) -> bool {
    while let Some(p) = nodes[i].parent {
        if p == a {
            return true;
        }
        i = p;
    }
    false
}

/// Recompute an affine reference's pinned-range ladder over the
/// (possibly spliced) loop forest: entry `l` is the index range with the
/// outermost `l` loops of `path` pinned and the rest swept
/// ([`sweep_dims`], innermost-first) — the same construction as the
/// walker's recording pass, now over composed nests. A pinned loop
/// collapses to its lower bound, except ancestors consumed by a
/// triangular child (`hi_pin`), which pin at their *upper* bound: that
/// is where the child sweeps its widest range, so the ladder stays a
/// maximal per-iteration working set.
fn ref_ladder(
    nodes: &[NodeBuild],
    path: &[usize],
    idx: &SymExpr,
    hi_pin: &std::collections::BTreeSet<String>,
) -> Option<Vec<(SymExpr, SymExpr)>> {
    let dims: Vec<LoopDim> = path
        .iter()
        .map(|&n| LoopDim {
            var: nodes[n].var.clone(),
            lo: nodes[n].lo.clone(),
            hi: nodes[n].hi.clone(),
            step: nodes[n].step,
        })
        .collect();
    let depth = dims.len();
    let mut out = Vec::with_capacity(depth + 1);
    for pin in 0..=depth {
        let mut min = idx.clone();
        let mut max = idx.clone();
        let mut unknown_sign = false;
        if !sweep_dims(&dims[pin..], &mut min, &mut max, &mut unknown_sign) {
            return None;
        }
        for dim in dims[..pin].iter().rev() {
            let at = if hi_pin.contains(&dim.var) {
                &dim.hi
            } else {
                &dim.lo
            };
            for range in [&mut min, &mut max] {
                if range.degree_in(&dim.var) == 0 {
                    continue;
                }
                if range.degree_in(&dim.var) > 1 || range.param_in_composite_atom(&dim.var) {
                    return None;
                }
                *range = range.substitute(&dim.var, at);
            }
        }
        out.push((min, max));
    }
    Some(out)
}

impl AccessModel {
    /// Build the per-nest working-set model of `func`, or `None` when
    /// its traffic cannot be fully attributed to affine loop nests.
    /// Known callees are inlined (`flatten_nest`): their loop forests
    /// splice under the call site with formal→actual substitution, so a
    /// composed solver like `cg_solve` places per-nest like inlined
    /// code. Triangular trip counts collapse to exact average extents;
    /// `idx_extent`-bounded gathers become capped conservative groups.
    /// What still refuses — guarded references and calls, unanalyzable
    /// loops, unmappable call arguments that reach an index or bound —
    /// sends callers back to the whole-footprint fits-or-streams model,
    /// exactly as conservative as before this model existed.
    pub fn nest_model(&self, func: &str, line_bytes: u32) -> Option<NestModel> {
        let mut sp = mira_probe::span("mem.nest_model", "mem");
        sp.arg("func", func);
        // A budget trip during working-set construction refuses the nest
        // model (None), which callers already treat as "fall back to the
        // fits-or-streams sweep" — the PR 5 refusal pattern.
        let built = mira_sym::budget::with_default_budget(|| self.nest_model_inner(func, line_bytes));
        if built.is_err() {
            sp.arg("refused", "budget");
            mira_probe::add("mem.nest_refusals", 1);
        }
        built.ok().flatten()
    }

    /// Inline every known callee's loop forest and references into the
    /// caller's, recursively: the nest-group analogue of the footprint
    /// composition in [`AccessModel::resolve`]. Callee domain variables
    /// are renamed (`$k` splice tags, so actuals can never capture
    /// them), value formals are substituted by the caller-side actual
    /// expressions, pointer formals map to caller arrays, and the
    /// callee's loops are re-parented under the call site's loop path.
    /// `None` when any callee traffic cannot be attributed (tainted or
    /// partially-unknown callee, guarded call, unmappable argument that
    /// reaches an index or bound) — the caller then falls back to the
    /// fits-or-streams sweep, the PR 6 refusal backstop.
    fn flatten_nest(
        &self,
        func: &str,
        depth: u32,
        splice: &mut usize,
    ) -> Option<(Vec<NodeBuild>, Vec<NestRef>)> {
        let info = self.functions.get(func)?;
        if info.nest_tainted || !info.unknown.is_empty() || depth > 16 {
            return None;
        }
        let mut nodes = info.nodes.clone();
        let mut refs = info.nest_refs.clone();
        for call in &info.calls {
            let Some(callee) = self.functions.get(&call.callee) else {
                // calls to functions outside the program (libm externs)
                // move no modeled bytes
                continue;
            };
            if call.guarded {
                return None;
            }
            let (cnodes, crefs) = self.flatten_nest(&call.callee, depth + 1, splice)?;
            *splice += 1;
            let tag = *splice;
            // formal → actual maps, exactly as the footprint composition
            // builds them
            let mut ptr_map: BTreeMap<&str, Result<&str, ()>> = BTreeMap::new();
            let mut val_map: BTreeMap<&str, Result<&SymExpr, ()>> = BTreeMap::new();
            for (i, formal) in callee.ptr_params.iter().enumerate() {
                if let Some(name) = formal {
                    let v = match call.args.get(i) {
                        Some(Ok(Arg::Ptr(p))) => Ok(p.as_str()),
                        _ => Err(()),
                    };
                    ptr_map.insert(name, v);
                }
            }
            {
                let mut vi = 0;
                for (i, formal) in callee.ptr_params.iter().enumerate() {
                    if formal.is_none() {
                        let name = &callee.value_params[vi];
                        vi += 1;
                        let v = match call.args.get(i) {
                            Some(Ok(Arg::Value(e))) => Ok(e),
                            _ => Err(()),
                        };
                        val_map.insert(name, v);
                    }
                }
            }
            // rename callee domain variables first (splice-unique `$tag`
            // suffix), then substitute actuals — an actual that mentions a
            // caller loop variable can no longer capture a callee one. An
            // `Err` argument only refuses if its formal reaches an index
            // or bound; annotation parameters pass through unchanged.
            let renames: Vec<(String, String)> = cnodes
                .iter()
                .map(|n| (n.var.clone(), format!("{}${tag}", n.var)))
                .collect();
            let map_expr = |e: &SymExpr| -> Option<SymExpr> {
                let mut out = e.clone();
                for (old, new) in &renames {
                    if out.params().iter().any(|p| p == old) {
                        out = out.substitute(old, &SymExpr::param(new));
                    }
                }
                for p in out.params() {
                    if let Some(v) = val_map.get(p.as_str()) {
                        out = out.substitute(&p, (*v).ok()?);
                    }
                }
                Some(out)
            };
            let offset = nodes.len();
            for n in &cnodes {
                nodes.push(NodeBuild {
                    parent: n
                        .parent
                        .map(|p| p + offset)
                        .or_else(|| call.path.last().copied()),
                    var: format!("{}${tag}", n.var),
                    lo: map_expr(&n.lo)?,
                    hi: map_expr(&n.hi)?,
                    step: n.step,
                });
            }
            for r in &crefs {
                let array = match ptr_map.get(r.array.as_str()) {
                    Some(Ok(caller_name)) => caller_name.to_string(),
                    // traffic to an array we cannot name in the caller —
                    // the model would under-count, so it refuses
                    _ => return None,
                };
                let mut path = call.path.clone();
                path.extend(r.path.iter().map(|p| p + offset));
                // affine ladders are recomputed from `idx` by the model
                // builder; a gather's flat bound is simply re-tiled to
                // the spliced depth
                let ranges = if r.gather {
                    let (mn, mx) = &r.ranges[0];
                    vec![(map_expr(mn)?, map_expr(mx)?); path.len() + 1]
                } else {
                    Vec::new()
                };
                refs.push(NestRef {
                    array,
                    path,
                    ranges,
                    idx: map_expr(&r.idx)?,
                    stored: r.stored,
                    stride_bytes: r.stride_bytes,
                    gather: r.gather,
                });
            }
        }
        Some((nodes, refs))
    }

    fn nest_model_inner(&self, func: &str, line_bytes: u32) -> Option<NestModel> {
        let mut splice = 0usize;
        let (nodes_b, mut refs) = self.flatten_nest(func, 0, &mut splice)?;
        // depth, first-iteration lower bound and trip count per node
        let var_node: BTreeMap<&str, usize> = nodes_b
            .iter()
            .enumerate()
            .map(|(i, n)| (n.var.as_str(), i))
            .collect();
        let mut depth = vec![0usize; nodes_b.len()];
        let mut pinned_lo: Vec<SymExpr> = Vec::with_capacity(nodes_b.len());
        let mut extents: Vec<SymExpr> = Vec::with_capacity(nodes_b.len());
        // ancestors consumed by a triangular child — their variables pin
        // at the *last* iteration in the working-set ladders (the largest
        // per-iteration working set), and no second triangular loop may
        // consume them (products of averages would stop being exact)
        let mut consumed: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut triangular: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for (i, nb) in nodes_b.iter().enumerate() {
            depth[i] = nb.parent.map(|p| depth[p] + 1).unwrap_or(0);
            let lo = pin_ancestors(&nodes_b, &pinned_lo, nb.parent, nb.lo.clone())?;
            pinned_lo.push(lo);
            let extent = nb.extent();
            let deps: Vec<usize> = extent
                .params()
                .iter()
                .filter_map(|p| var_node.get(p.as_str()).copied())
                .collect();
            if deps.is_empty() {
                // rectangular (tiled bounds cancel to a constant extent)
                extents.push(pin_ancestors(&nodes_b, &pinned_lo, nb.parent, extent)?);
                continue;
            }
            // a triangular loop: its trip count is affine in exactly one
            // rectangular ancestor's variable, and nonnegative across the
            // ancestor's whole range. Substituting the ancestor's range
            // midpoint gives the closed-form *average* extent
            // (`mira_sym::sum::avg_over`): the product of per-level
            // extents is then the exact total iteration count.
            let [a] = deps[..] else {
                return None;
            };
            let v = nodes_b[a].var.clone();
            if !is_ancestor(&nodes_b, a, i)
                || consumed.contains(&a)
                || triangular.contains(&a)
                || extent.degree_in(&v) != 1
                || extent.param_in_composite_atom(&v)
            {
                return None;
            }
            let (alo, ahi) = (&nodes_b[a].lo, &nodes_b[a].hi);
            let rectangular = |e: &SymExpr| {
                e.params().iter().all(|p| !var_node.contains_key(p.as_str()))
            };
            if !rectangular(alo) || !rectangular(ahi) {
                return None;
            }
            // the trip count must be nonnegative over the ancestor's
            // whole range — a shape that bottoms out negative would need
            // clamping, which the midpoint sum cannot represent exactly.
            // Affine in `v`, it is smallest at the end its slope points
            // away from, so one endpoint check covers the range.
            let slope = extent.coefficients_of(&v)[1].clone();
            let low_end = match sign_of(&slope) {
                Some(true) => alo,
                Some(false) => ahi,
                None => return None,
            };
            if sign_of(&extent.substitute(&v, low_end)) != Some(true) {
                return None;
            }
            let mid = alo.add_expr(ahi).scale(Rat::new(1, 2));
            let avg = extent.substitute(&v, &mid);
            if !rectangular(&avg) {
                return None;
            }
            consumed.insert(a);
            triangular.insert(i);
            extents.push(avg);
        }
        // recompute every affine reference's pinned-range ladder over the
        // (possibly spliced) forest, pinning consumed ancestors at their
        // last iteration
        let hi_pin: std::collections::BTreeSet<String> = consumed
            .iter()
            .map(|&a| nodes_b[a].var.clone())
            .collect();
        for r in refs.iter_mut() {
            if !r.gather {
                r.ranges = ref_ladder(&nodes_b, &r.path, &r.idx, &hi_pin)?;
            }
        }
        // per-node one-iteration working sets. Per-array ranges unite
        // when comparable; an incomparable pair (a hi-pinned consumed
        // ancestor against a swept triangular child, say `x[n-1]` vs
        // `x[0..n-2]` in a forward solve) keeps both ranges and sums
        // their line counts — at most one shared boundary line of
        // overcount per reference, and the ladder stays an upper bound
        // instead of refusing the whole model.
        let mut nodes = Vec::with_capacity(nodes_b.len());
        for i in 0..nodes_b.len() {
            let d = depth[i];
            let mut per_array: BTreeMap<&str, Vec<(SymExpr, SymExpr)>> = BTreeMap::new();
            for r in &refs {
                if r.path.get(d) != Some(&i) {
                    continue;
                }
                let (mn, mx) = &r.ranges[d + 1];
                let ranges = per_array.entry(r.array.as_str()).or_default();
                let mut united = false;
                for slot in ranges.iter_mut() {
                    if let Some(u) = sym_min_max(&slot.0, mn, &slot.1, mx) {
                        *slot = u;
                        united = true;
                        break;
                    }
                }
                if !united {
                    ranges.push((mn.clone(), mx.clone()));
                }
            }
            let mut ws = SymExpr::zero();
            for (mn, mx) in per_array.values().flatten() {
                ws = ws.add_expr(&range_lines_expr(mn, mx, line_bytes));
            }
            nodes.push(NestNode {
                parent: nodes_b[i].parent,
                extent: extents[i].clone(),
                ws_lines: ws,
            });
        }
        // array × nest groups (gathers grouped apart: their counting
        // regime differs)
        let mut by_group: BTreeMap<(String, Vec<usize>, bool), Vec<&NestRef>> = BTreeMap::new();
        for r in &refs {
            by_group
                .entry((r.array.clone(), r.path.clone(), r.gather))
                .or_default()
                .push(r);
        }
        let mut groups = Vec::with_capacity(by_group.len());
        for ((array, path, _), grefs) in by_group {
            groups.push(Self::build_group(&nodes_b, array, path, &grefs, line_bytes)?);
        }
        Some(NestModel {
            nodes,
            groups,
            line_bytes,
        })
    }

    /// Build the traffic group for one array × path × kind cluster of
    /// references. Gather (data-dependent) references get their own
    /// counting regime: the union of their `idx_extent` bounds as the
    /// compulsory line count, capped at the access count in
    /// [`NestModel::boundary_traffic`], never exact.
    fn build_group(
        nodes: &[NodeBuild],
        array: String,
        path: Vec<usize>,
        refs: &[&NestRef],
        line_bytes: u32,
    ) -> Option<NestGroup> {
        if refs.iter().any(|r| r.gather) {
            let mut union: Option<(SymExpr, SymExpr)> = None;
            let mut stored_union: Option<(SymExpr, SymExpr)> = None;
            let mut sum_lines = SymExpr::zero();
            let mut sum_stored_lines = SymExpr::zero();
            for r in refs {
                let (mn, mx) = &r.ranges[0];
                let l = range_lines_expr(mn, mx, line_bytes);
                sum_lines = sum_lines.add_expr(&l);
                union = Some(match union {
                    None => (mn.clone(), mx.clone()),
                    Some((umn, umx)) => sym_min_max(&umn, mn, &umx, mx)?,
                });
                if r.stored {
                    sum_stored_lines = sum_stored_lines.add_expr(&l);
                    stored_union = Some(match stored_union {
                        None => (mn.clone(), mx.clone()),
                        Some((smn, smx)) => sym_min_max(&smn, mn, &smx, mx)?,
                    });
                }
            }
            let (umn, umx) = union?;
            return Some(NestGroup {
                array,
                stored: refs.iter().any(|r| r.stored),
                lines: range_lines_expr(&umn, &umx, line_bytes),
                stored_lines: stored_union
                    .map(|(a, b)| range_lines_expr(&a, &b, line_bytes))
                    .unwrap_or_else(SymExpr::zero),
                sum_lines,
                sum_stored_lines,
                depends: vec![false; path.len()],
                union_capture_level: usize::MAX,
                exact: false,
                gather: true,
                gather_refs: (
                    refs.len() as i64,
                    refs.iter().filter(|r| r.stored).count() as i64,
                ),
                path,
            });
        }
        // distinct access functions, each with its own united range
        struct Access {
            idx: SymExpr,
            min: SymExpr,
            max: SymExpr,
            stored: bool,
        }
        let mut accesses: Vec<Access> = Vec::new();
        for r in refs {
            let (mn, mx) = &r.ranges[0];
            match accesses
                .iter_mut()
                .find(|a| a.idx.sub_expr(&r.idx).is_zero())
            {
                Some(a) => {
                    let (nmn, nmx) = sym_min_max(&a.min, mn, &a.max, mx)?;
                    a.min = nmn;
                    a.max = nmx;
                    a.stored |= r.stored;
                }
                None => accesses.push(Access {
                    idx: r.idx.clone(),
                    min: mn.clone(),
                    max: mx.clone(),
                    stored: r.stored,
                }),
            }
        }
        // full-sweep union (and the stored subset), tracking gap-freedom;
        // an incomparable union falls back to the per-access sum — a
        // valid (if overlapping) upper bound on the distinct lines
        let mut connected = true;
        let mut comparable = true;
        let mut union: Option<(SymExpr, SymExpr)> = None;
        let mut stored_union: Option<(SymExpr, SymExpr)> = None;
        for r in refs {
            let (mn, mx) = &r.ranges[0];
            union = Some(match union {
                None => (mn.clone(), mx.clone()),
                Some((umn, umx)) => {
                    if !ranges_connected(&umn, &umx, mn, mx) {
                        connected = false;
                    }
                    match sym_min_max(&umn, mn, &umx, mx) {
                        Some(u) => u,
                        None => {
                            comparable = false;
                            (umn, umx)
                        }
                    }
                }
            });
            if r.stored {
                stored_union = Some(match stored_union {
                    None => (mn.clone(), mx.clone()),
                    Some((smn, smx)) => match sym_min_max(&smn, mn, &smx, mx) {
                        Some(u) => u,
                        None => {
                            comparable = false;
                            (smn, smx)
                        }
                    },
                });
            }
        }
        let (umn, umx) = union?;
        let mut sum_lines = SymExpr::zero();
        let mut sum_stored_lines = SymExpr::zero();
        for a in &accesses {
            let l = range_lines_expr(&a.min, &a.max, line_bytes);
            sum_lines = sum_lines.add_expr(&l);
            if a.stored {
                sum_stored_lines = sum_stored_lines.add_expr(&l);
            }
        }
        let (lines, stored_lines) = if comparable {
            (
                range_lines_expr(&umn, &umx, line_bytes),
                stored_union
                    .as_ref()
                    .map(|(a, b)| range_lines_expr(a, b, line_bytes))
                    .unwrap_or_else(SymExpr::zero),
            )
        } else {
            (sum_lines.clone(), sum_stored_lines.clone())
        };
        // does pinning one more level move any reference's range?
        let mut depends = vec![false; path.len()];
        for r in refs {
            for (l, dep) in depends.iter_mut().enumerate() {
                let (a0, b0) = &r.ranges[l];
                let (a1, b1) = &r.ranges[l + 1];
                if !a0.sub_expr(a1).is_zero() || !b0.sub_expr(b1).is_zero() {
                    *dep = true;
                }
            }
        }
        // stencil analysis: a constant offset δ between two access
        // functions is reuse carried by the outermost loop whose
        // per-iteration index movement (its coefficient) covers δ —
        // union counting needs capture at that loop
        let mut union_capture_level = usize::MAX;
        let mut deltas_clean = true;
        for i in 0..accesses.len() {
            for j in i + 1..accesses.len() {
                let delta = accesses[i].idx.sub_expr(&accesses[j].idx);
                let Some(nonneg) = sign_of(&delta) else {
                    deltas_clean = false;
                    union_capture_level = 0;
                    continue;
                };
                let dabs = if nonneg { delta } else { delta.neg_expr() };
                let mut carried = None;
                for (l, node) in path.iter().enumerate() {
                    let var = &nodes[*node].var;
                    if accesses[i].idx.degree_in(var) == 0 {
                        continue;
                    }
                    let coeff = accesses[i].idx.coefficients_of(var)[1].clone();
                    let mag = match sign_of(&coeff) {
                        Some(true) => coeff,
                        Some(false) => coeff.neg_expr(),
                        None => {
                            deltas_clean = false;
                            union_capture_level = 0;
                            carried = None;
                            break;
                        }
                    };
                    // |coeff| ≤ |δ|: one iteration here spans the offset
                    if sign_of(&dabs.sub_expr(&mag)) == Some(true) {
                        carried = Some(l);
                        break;
                    }
                }
                if let Some(l) = carried {
                    union_capture_level = union_capture_level.min(l + 1);
                }
                // no qualifying level: the offset is smaller than every
                // per-iteration movement — reuse within one innermost
                // iteration, captured by any cache
            }
        }
        let dense = refs
            .iter()
            .all(|r| matches!(r.stride_bytes, Some(s) if s <= line_bytes as i128));
        Some(NestGroup {
            array,
            path,
            stored: refs.iter().any(|r| r.stored),
            lines,
            stored_lines,
            sum_lines,
            sum_stored_lines,
            depends,
            union_capture_level,
            exact: line_bytes <= 64 && dense && connected && deltas_clean && comparable,
            gather: false,
            gather_refs: (0, 0),
        })
    }
}

/// Fold one reference into the per-array footprint map, uniting index
/// ranges; incomparable ranges keep the first and flag the array.
fn union_ref(
    by_array: &mut BTreeMap<String, ArrayFootprint>,
    unknown: &mut Vec<String>,
    r: RawRef,
) {
    match by_array.entry(r.array.clone()) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(ArrayFootprint {
                array: r.array,
                min_index: r.min,
                max_index: r.max,
                loaded: r.loaded,
                stored: r.stored,
                stride_bytes: r.stride_bytes,
            });
        }
        std::collections::btree_map::Entry::Occupied(mut e) => {
            let fp = e.get_mut();
            fp.loaded |= r.loaded;
            fp.stored |= r.stored;
            // a dense union needs both sides dense AND the ranges
            // connected — otherwise the joined range has an unproven gap
            fp.stride_bytes = match (fp.stride_bytes, r.stride_bytes) {
                (Some(a), Some(b))
                    if ranges_connected(&fp.min_index, &fp.max_index, &r.min, &r.max) =>
                {
                    Some(a.max(b))
                }
                _ => None,
            };
            match sym_min_max(&fp.min_index, &r.min, &fp.max_index, &r.max) {
                Some((mn, mx)) => {
                    fp.min_index = mn;
                    fp.max_index = mx;
                }
                None => {
                    fp.stride_bytes = None;
                    unknown.push(fp.array.clone());
                }
            }
        }
    }
}

/// Can the union of two index ranges be treated as gap-free? True when
/// they numerically overlap or touch (all-constant case), or when both
/// endpoint differences are constants — equal-shape symbolic ranges
/// shifted by a constant, connected for the parameter-sized extents this
/// analysis models (a documented assumption, like nonnegative
/// parameters).
fn ranges_connected(min_a: &SymExpr, max_a: &SymExpr, min_b: &SymExpr, max_b: &SymExpr) -> bool {
    if let (Some(lo_a), Some(hi_a), Some(lo_b), Some(hi_b)) = (
        min_a.as_int(),
        max_a.as_int(),
        min_b.as_int(),
        max_b.as_int(),
    ) {
        return lo_b <= hi_a + 1 && lo_a <= hi_b + 1;
    }
    min_b.sub_expr(min_a).as_constant().is_some() && max_b.sub_expr(max_a).as_constant().is_some()
}

/// `min`/`max` of two affine expressions when their difference has a
/// decidable sign — constant, or uniformly signed in the (nonnegative)
/// parameters, so `i·n` and `(i+1)·n` row offsets compare; `None` when
/// incomparable (mixed-sign differences).
fn sym_min_max(
    min_a: &SymExpr,
    min_b: &SymExpr,
    max_a: &SymExpr,
    max_b: &SymExpr,
) -> Option<(SymExpr, SymExpr)> {
    let pick = |a: &SymExpr, b: &SymExpr, smaller: bool| -> Option<SymExpr> {
        let a_le_b = match sign_of(&a.sub_expr(b)) {
            Some(nonneg) => !nonneg || a.sub_expr(b).is_zero(),
            None => return None,
        };
        Some(if a_le_b == smaller { a.clone() } else { b.clone() })
    };
    Some((pick(min_a, min_b, true)?, pick(max_a, max_b, false)?))
}

// ---- per-function walker ----

/// One enclosing loop: the renamed induction variable and its bounds (in
/// outer domain variables and parameters).
struct LoopDim {
    var: String,
    lo: SymExpr,
    hi: SymExpr,
    /// Element stride per iteration contributed by the loop step
    /// (`i += 4` → 4); 1 for unit loops.
    step: i64,
}

impl LoopDim {
    /// Trip count of this dimension: `(hi - lo)/step + 1`.
    fn extent(&self) -> SymExpr {
        let span = self.hi.sub_expr(&self.lo);
        if self.step > 1 {
            span.floor_div(self.step).add_expr(&SymExpr::constant(1))
        } else {
            span.add_expr(&SymExpr::constant(1))
        }
    }
}

struct Walker {
    scope: LoopScope,
    loops: Vec<LoopDim>,
    /// Mutable scalar state collected by a pre-pass — declared locals and
    /// every assignment/increment target anywhere in the function, so a
    /// later mutation also poisons earlier references. Loop induction
    /// variables land here too (their step mutates them), which is
    /// harmless: inside an analyzed loop they are renamed to domain
    /// variables before this check.
    poisoned: Vec<String>,
    safe_params: Vec<String>,
    /// Depth of enclosing `if`/`while` branches: a guarded reference can
    /// only shrink the touched set, so its range stays a valid bound but
    /// must not claim dense coverage.
    branch_depth: u32,
    /// Innermost-last stack of `idx_extent` annotations: unanalyzable
    /// subscripts inside an annotated loop are bounded to
    /// `[0, extent - 1]` instead of poisoning their array.
    extent_stack: Vec<SymExpr>,
    refs: Vec<RawRef>,
    unknown: Vec<String>,
    calls: Vec<CallSite>,
    var_counter: usize,
    /// Loop forest and per-reference nest bookkeeping (see [`FuncInfo`]).
    nodes: Vec<NodeBuild>,
    node_path: Vec<usize>,
    nest_refs: Vec<NestRef>,
    nest_tainted: bool,
}

/// Pre-pass: every scalar the function ever declares, assigns or
/// increments. Indices built from these are not affine functions of the
/// iteration domain.
fn collect_mutations(s: &Stmt, out: &mut Vec<String>) {
    fn expr(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Assign { target, value, .. } => {
                if let ExprKind::Var(n) = &target.kind {
                    out.push(n.clone());
                }
                expr(target, out);
                expr(value, out);
            }
            ExprKind::IncDec { target, .. } => {
                if let ExprKind::Var(n) = &target.kind {
                    out.push(n.clone());
                }
                expr(target, out);
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                expr(lhs, out);
                expr(rhs, out);
            }
            ExprKind::Unary { operand, .. }
            | ExprKind::Cast { operand, .. }
            | ExprKind::ImplicitCast { operand, .. } => expr(operand, out),
            ExprKind::Index { base, index } => {
                expr(base, out);
                expr(index, out);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    expr(a, out);
                }
            }
            ExprKind::Var(_) | ExprKind::IntLit(_) | ExprKind::FloatLit(_) => {}
        }
    }
    match &s.kind {
        StmtKind::Decl { name, init, .. } => {
            out.push(name.clone());
            if let Some(e) = init {
                expr(e, out);
            }
        }
        StmtKind::Expr(e) => expr(e, out),
        StmtKind::Return(Some(e)) => expr(e, out),
        StmtKind::Return(None) | StmtKind::Empty => {}
        StmtKind::Block(b) => {
            for s in &b.stmts {
                collect_mutations(s, out);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr(cond, out);
            collect_mutations(then_branch, out);
            if let Some(e) = else_branch {
                collect_mutations(e, out);
            }
        }
        StmtKind::While { cond, body } => {
            expr(cond, out);
            collect_mutations(body, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init.as_deref() {
                collect_mutations(i, out);
            }
            if let Some(c) = cond {
                expr(c, out);
            }
            if let Some(st) = step {
                expr(st, out);
            }
            collect_mutations(body, out);
        }
    }
}

fn analyze_func(f: &Func) -> FuncInfo {
    let ptr_params: Vec<Option<String>> = f
        .params
        .iter()
        .map(|p| p.ty.is_pointer().then(|| p.name.clone()))
        .collect();
    let value_params: Vec<String> = f
        .params
        .iter()
        .filter(|p| !p.ty.is_pointer())
        .map(|p| p.name.clone())
        .collect();
    let mut poisoned = Vec::new();
    for s in &f.body.stmts {
        collect_mutations(s, &mut poisoned);
    }
    poisoned.sort();
    poisoned.dedup();
    // a reassigned value parameter is mutable state, not a parameter
    let safe_params: Vec<String> = value_params
        .iter()
        .filter(|p| !poisoned.contains(p))
        .cloned()
        .collect();
    let mut w = Walker {
        scope: LoopScope::new(),
        loops: Vec::new(),
        poisoned,
        safe_params,
        branch_depth: 0,
        extent_stack: Vec::new(),
        refs: Vec::new(),
        unknown: Vec::new(),
        calls: Vec::new(),
        var_counter: 0,
        nodes: Vec::new(),
        node_path: Vec::new(),
        nest_refs: Vec::new(),
        nest_tainted: false,
    };
    for s in &f.body.stmts {
        w.walk_stmt(s);
    }
    let mut unknown = w.unknown;
    unknown.sort();
    unknown.dedup();
    FuncInfo {
        ptr_params,
        value_params,
        refs: w.refs,
        unknown,
        calls: w.calls,
        nodes: w.nodes,
        nest_refs: w.nest_refs,
        nest_tainted: w.nest_tainted,
    }
}

impl Walker {
    fn walk_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    self.walk_expr(e, false);
                }
            }
            StmtKind::Expr(e) => self.walk_expr(e, false),
            StmtKind::Return(Some(e)) => self.walk_expr(e, false),
            StmtKind::Return(None) | StmtKind::Empty => {}
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    self.walk_stmt(s);
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                // footprints are unions over the whole domain; a branch
                // can only shrink the touched set, so both sides
                // contribute their full ranges — as upper bounds, never
                // as dense (exact) coverage
                self.walk_expr(cond, false);
                self.branch_depth += 1;
                self.walk_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.walk_stmt(e);
                }
                self.branch_depth -= 1;
            }
            StmtKind::While { cond, body } => {
                self.walk_expr(cond, false);
                match s.annotation.as_ref().and_then(|a| self.annotated_while_dim(a)) {
                    Some(dim) => {
                        // `{lp_iters: t}` asserts the trip count: the loop
                        // becomes a synthetic repetition dimension, so the
                        // nest model sees how often the body re-sweeps —
                        // the cg_solve outer-iteration shape
                        let dom = dim.var.clone();
                        self.push_node(&dom, &dim.lo, &dim.hi, dim.step);
                        self.loops.push(dim);
                        self.walk_stmt(body);
                        self.loops.pop();
                        self.node_path.pop();
                    }
                    None => {
                        // a bare while loop is a data-dependent guard
                        // around its body
                        self.branch_depth += 1;
                        self.walk_stmt(body);
                        self.branch_depth -= 1;
                    }
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => self.walk_for(init, cond, step, body, s.annotation.as_ref()),
        }
    }

    fn walk_for(
        &mut self,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &Stmt,
        ann: Option<&Annotation>,
    ) {
        let scop = match (init, cond, step) {
            (Some(i), Some(c), Some(st)) => extract_for_scop(i, c, st, &self.scope),
            _ => None,
        };
        // bound and step expressions themselves read memory (row_ptr[i])
        if let Some(i) = init.as_deref() {
            match &i.kind {
                StmtKind::Decl { init: Some(e), .. } => self.walk_expr(e, false),
                StmtKind::Expr(e) => self.walk_expr(e, false),
                _ => {}
            }
        }
        if let Some(c) = cond {
            self.walk_expr(c, false);
        }
        if let Some(st) = step {
            self.walk_expr(st, false);
        }
        let pushed_extent = match ann.and_then(|a| self.annot_expr(a, "idx_extent")) {
            Some(e) => {
                self.extent_stack.push(e);
                true
            }
            None => false,
        };
        match scop {
            Some(scop) => {
                let dom = format!("{}@{}", scop.var, self.var_counter);
                self.var_counter += 1;
                let step = scop.stride.map(|(m, _)| m).unwrap_or(1);
                self.loops.push(LoopDim {
                    var: dom.clone(),
                    lo: scop.lo.clone(),
                    hi: scop.hi.clone(),
                    step,
                });
                self.push_node(&dom, &scop.lo, &scop.hi, step);
                let saved = self.scope.insert(scop.var.clone(), dom);
                self.walk_stmt(body);
                self.loops.pop();
                self.node_path.pop();
                match saved {
                    Some(v) => {
                        self.scope.insert(scop.var.clone(), v);
                    }
                    None => {
                        self.scope.remove(&scop.var);
                    }
                }
            }
            None => match self.cumulative_dim(init, ann) {
                Some((var, dim)) => {
                    // a `{lp_iters: t, lp_cumulative: yes}` annotation: the
                    // data-dependent loop sweeps a cumulative prefix across
                    // the enclosing nest, so it acts as one synthetic affine
                    // dimension of extent (enclosing trip count) · t
                    let dom = dim.var.clone();
                    self.push_node(&dom, &dim.lo, &dim.hi, dim.step);
                    self.loops.push(dim);
                    let saved = self.scope.insert(var.clone(), dom);
                    self.walk_stmt(body);
                    self.loops.pop();
                    self.node_path.pop();
                    match saved {
                        Some(v) => {
                            self.scope.insert(var.clone(), v);
                        }
                        None => {
                            self.scope.remove(&var);
                        }
                    }
                }
                None => {
                    // unanalyzable bounds: the induction variable is already
                    // poisoned by the mutation pre-pass (its step assigns
                    // it), so references indexed by it are reported unknown —
                    // and the loop's repetition count is invisible to the
                    // per-nest model, so that model must not be built
                    self.nest_tainted = true;
                    self.walk_stmt(body);
                }
            },
        }
        if pushed_extent {
            self.extent_stack.pop();
        }
    }

    /// An annotation value as a symbolic expression: identifiers become
    /// model parameters, numbers constants; rejected when the named
    /// parameter is mutable state.
    fn annot_expr(&self, ann: &Annotation, key: &str) -> Option<SymExpr> {
        let e = match ann.get(key)? {
            AnnotValue::Ident(name) if !self.poisoned.contains(name) => SymExpr::param(name),
            AnnotValue::Num(v) => SymExpr::constant(*v as i128),
            _ => return None,
        };
        Some(e)
    }

    /// The synthetic repetition dimension for an `lp_iters`-annotated
    /// `while` loop: `[0, t - 1]` with `t = lp_iters · lp_scale`. The
    /// annotation asserts the trip count the same way it does for the
    /// FLOP model, so body references and calls repeat `t` times rather
    /// than hiding behind a guard — this is what lets `cg_solve`'s
    /// outer iteration loop carry its callees' nests.
    fn annotated_while_dim(&mut self, ann: &Annotation) -> Option<LoopDim> {
        let mut iters = self.annot_expr(ann, "lp_iters")?;
        if let Some(AnnotValue::Num(f)) = ann.get("lp_scale") {
            iters = iters.scale(Rat::new((f * 1_000_000_000.0).round() as i128, 1_000_000_000));
        }
        let dom = format!("while@{}", self.var_counter);
        self.var_counter += 1;
        Some(LoopDim {
            var: dom,
            lo: SymExpr::zero(),
            hi: iters.sub_expr(&SymExpr::constant(1)),
            step: 1,
        })
    }

    /// The synthetic dimension for a `lp_cumulative` annotated loop:
    /// `[p·t, p·t + t - 1]` where `p` is the *ordinal* of the immediately
    /// enclosing loop's current iteration and `t = lp_iters · lp_scale`
    /// the annotated per-entry trip estimate — the average row slice of
    /// the cumulative prefix. Swept over the parent this covers exactly
    /// `[0, N·t)` (the whole prefix, as before), while pinning the
    /// parent restricts the range to one row's slice, so the working-set
    /// ladder sees that one parent iteration touches `t` entries rather
    /// than the whole prefix. Only the direct parent extends the
    /// prefix: the CSR pattern restarts at `row_ptr[0]` whenever an
    /// outer loop (a benchmark-style repetition loop, a higher nest
    /// level) re-enters the row loop, so outer dimensions are revisits
    /// of the same `[0, N·t)` range — exactly how an affine reference's
    /// range behaves under an enclosing reps loop.
    fn cumulative_dim(
        &mut self,
        init: &Option<Box<Stmt>>,
        ann: Option<&Annotation>,
    ) -> Option<(String, LoopDim)> {
        let ann = ann?;
        if !ann.flag("lp_cumulative") {
            return None;
        }
        let mut iters = self.annot_expr(ann, "lp_iters")?;
        if let Some(AnnotValue::Num(f)) = ann.get("lp_scale") {
            iters = iters.scale(Rat::new((f * 1_000_000_000.0).round() as i128, 1_000_000_000));
        }
        // the annotated loop's induction variable, from its init clause
        let var = match init.as_deref().map(|s| &s.kind) {
            Some(StmtKind::Decl { name, .. }) => name.clone(),
            Some(StmtKind::Expr(e)) => match &e.kind {
                ExprKind::Assign { target, .. } => match &target.kind {
                    ExprKind::Var(n) => n.clone(),
                    _ => return None,
                },
                _ => return None,
            },
            _ => return None,
        };
        // the parent iteration's ordinal `(v - lo)/step`, zero when the
        // annotated loop is outermost (a single prefix entry)
        let ordinal = match self.loops.last() {
            Some(parent) => {
                let pos = SymExpr::param(&parent.var).sub_expr(&parent.lo);
                if parent.step > 1 {
                    pos.scale(Rat::new(1, parent.step as i128))
                } else {
                    pos
                }
            }
            None => SymExpr::zero(),
        };
        let lo = ordinal.mul_expr(&iters);
        let hi = lo.add_expr(&iters).sub_expr(&SymExpr::constant(1));
        let dom = format!("{var}@{}", self.var_counter);
        self.var_counter += 1;
        Some((
            var,
            LoopDim {
                var: dom,
                lo,
                hi,
                step: 1,
            },
        ))
    }

    fn walk_expr(&mut self, e: &Expr, is_store: bool) {
        match &e.kind {
            ExprKind::Index { base, index } => {
                self.walk_expr(index, false);
                // peel casts so a wrapped pointer still names its array
                let mut b: &Expr = base;
                while let ExprKind::Cast { operand, .. } | ExprKind::ImplicitCast { operand, .. } =
                    &b.kind
                {
                    b = operand;
                }
                self.record_ref(b, index, is_store);
            }
            ExprKind::Assign { target, value, op } => {
                self.walk_expr(target, true);
                if *op != mira_minic::AssignOp::Set {
                    // compound assignment reads the target too (same
                    // lines, but the load flag matters for reporting)
                    self.walk_expr(target, false);
                }
                self.walk_expr(value, false);
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs, false);
                self.walk_expr(rhs, false);
            }
            ExprKind::Unary { operand, .. }
            | ExprKind::Cast { operand, .. }
            | ExprKind::ImplicitCast { operand, .. } => self.walk_expr(operand, false),
            ExprKind::IncDec { target, .. } => self.walk_expr(target, false),
            ExprKind::Call { name, args } => {
                for a in args {
                    self.walk_expr(a, false);
                }
                self.record_call(name, args);
            }
            ExprKind::Var(_) | ExprKind::IntLit(_) | ExprKind::FloatLit(_) => {}
        }
    }

    fn record_call(&mut self, name: &str, args: &[Expr]) {
        let mapped: Vec<Result<Arg, ()>> = args
            .iter()
            .map(|a| {
                if a.ty.is_pointer() {
                    match &a.kind {
                        ExprKind::Var(n) => Ok(Arg::Ptr(n.clone())),
                        _ => Err(()),
                    }
                } else {
                    match self.index_affine(a) {
                        Some(e) if self.expr_is_safe(&e) => Ok(Arg::Value(e)),
                        _ => Err(()),
                    }
                }
            })
            .collect();
        self.calls.push(CallSite {
            callee: name.to_string(),
            args: mapped,
            path: self.node_path.clone(),
            guarded: self.branch_depth > 0,
        });
    }

    /// An affine expression is safe when it only references loop domain
    /// variables and immutable value parameters.
    fn expr_is_safe(&self, e: &SymExpr) -> bool {
        e.params().iter().all(|p| {
            self.loops.iter().any(|l| &l.var == p) || self.safe_params.contains(p)
        })
    }

    fn has_loop_var(&self, e: &SymExpr) -> bool {
        e.params().iter().any(|p| self.loops.iter().any(|l| &l.var == p))
    }

    /// Convert an index expression to a form affine in the loop variables
    /// with *parameter* coefficients (`i*n + j` — the paper's affine
    /// access functions) — a superset of the bound conversion in
    /// `mira_core::scop::to_affine`, which only admits constant
    /// coefficients.
    fn index_affine(&self, e: &Expr) -> Option<SymExpr> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(SymExpr::constant(*v as i128)),
            ExprKind::Var(name) => {
                let mapped = self.scope.get(name).cloned().unwrap_or_else(|| name.clone());
                Some(SymExpr::param(&mapped))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.index_affine(lhs)?;
                let r = self.index_affine(rhs)?;
                match op {
                    BinOp::Add => Some(l.add_expr(&r)),
                    BinOp::Sub => Some(l.sub_expr(&r)),
                    BinOp::Mul => {
                        // stays affine in the loop variables as long as at
                        // most one factor mentions them
                        if !self.has_loop_var(&l) || !self.has_loop_var(&r) {
                            Some(l.mul_expr(&r))
                        } else {
                            None
                        }
                    }
                    BinOp::Div => {
                        let c = r.as_constant()?.as_integer()?;
                        if c > 0 {
                            Some(l.floor_div(c as i64))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            ExprKind::Unary {
                op: UnOp::Neg,
                operand,
            } => Some(self.index_affine(operand)?.neg_expr()),
            ExprKind::Cast { operand, .. } | ExprKind::ImplicitCast { operand, .. } => {
                self.index_affine(operand)
            }
            _ => None,
        }
    }

    /// Record the current loop as a node of the persistent loop forest.
    fn push_node(&mut self, var: &str, lo: &SymExpr, hi: &SymExpr, step: i64) {
        let id = self.nodes.len();
        self.nodes.push(NodeBuild {
            parent: self.node_path.last().copied(),
            var: var.to_string(),
            lo: lo.clone(),
            hi: hi.clone(),
            step,
        });
        self.node_path.push(id);
    }

    fn record_ref(&mut self, base: &Expr, index: &Expr, store: bool) {
        let ExprKind::Var(array) = &base.kind else {
            return;
        };
        if !base.ty.is_pointer() {
            return;
        }
        let Some(idx) = self.index_affine(index) else {
            self.bounded_or_unknown(array, store);
            return;
        };
        if !self.expr_is_safe(&idx) || self.is_poisoned(&idx) {
            self.bounded_or_unknown(array, store);
            return;
        }
        match self.range_of(&idx) {
            // loop bounds may have pulled mutable locals into the range
            Some((min, max, _)) if self.is_poisoned(&min) || self.is_poisoned(&max) => {
                self.bounded_or_unknown(array, store);
            }
            Some((min, max, stride)) => {
                self.record_nest_ref(array, &idx, store, stride);
                self.refs.push(RawRef {
                    array: array.clone(),
                    min,
                    max,
                    loaded: !store,
                    stored: store,
                    stride_bytes: if self.branch_depth == 0 { stride } else { None },
                });
            }
            None => self.bounded_or_unknown(array, store),
        }
    }

    /// Nest-model bookkeeping for one analyzable reference: the pinned
    /// range ladder over the current loop path. Guarded references taint
    /// the model — their traffic cannot be attributed to a nest level.
    fn record_nest_ref(&mut self, array: &str, idx: &SymExpr, store: bool, stride: Option<i128>) {
        if self.branch_depth > 0 {
            self.nest_tainted = true;
            return;
        }
        let Some(ranges) = self.pinned_ranges(idx) else {
            self.nest_tainted = true;
            return;
        };
        if ranges
            .iter()
            .any(|(mn, mx)| self.is_poisoned(mn) || self.is_poisoned(mx))
        {
            self.nest_tainted = true;
            return;
        }
        self.nest_refs.push(NestRef {
            array: array.to_string(),
            path: self.node_path.clone(),
            ranges,
            idx: idx.clone(),
            stored: store,
            stride_bytes: stride,
            gather: false,
        });
    }

    /// The index range with the outermost `l` enclosing loops pinned at
    /// their first iteration and the rest swept, for every `l` in
    /// `0..=depth` — the per-nest working-set ladder. The swept dims are
    /// substituted innermost-first (the same [`sweep_dims`] step
    /// [`Walker::range_of`] uses); pinned dims then collapse to their
    /// lower bound, innermost-pinned first so tiled bounds resolve
    /// toward the outermost loop.
    fn pinned_ranges(&self, idx: &SymExpr) -> Option<Vec<(SymExpr, SymExpr)>> {
        let depth = self.loops.len();
        let mut out = Vec::with_capacity(depth + 1);
        for pin in 0..=depth {
            let mut min = idx.clone();
            let mut max = idx.clone();
            let mut unknown_sign = false;
            if !sweep_dims(&self.loops[pin..], &mut min, &mut max, &mut unknown_sign) {
                return None;
            }
            for dim in self.loops[..pin].iter().rev() {
                for range in [&mut min, &mut max] {
                    if range.degree_in(&dim.var) == 0 {
                        continue;
                    }
                    if range.degree_in(&dim.var) > 1 || range.param_in_composite_atom(&dim.var) {
                        return None;
                    }
                    *range = range.substitute(&dim.var, &dim.lo);
                }
            }
            out.push((min, max));
        }
        Some(out)
    }

    /// An unanalyzable reference: inside an `idx_extent`-annotated loop it
    /// is bounded to `[0, extent - 1]` — a coverage-unproven upper bound,
    /// like a guarded reference — otherwise the array is unknown.
    ///
    /// A bounded reference also joins the nest bookkeeping as a *gather*:
    /// its flat range ladder never moves with any loop, and the traffic
    /// model caps its fills at the access count
    /// ([`NestGroup::gather`]). Guarded bounded references still taint —
    /// their execution count is unknown.
    fn bounded_or_unknown(&mut self, array: &str, store: bool) {
        if let Some(extent) = self.extent_stack.last() {
            if !self.is_poisoned(extent) {
                let max = extent.sub_expr(&SymExpr::constant(1));
                self.refs.push(RawRef {
                    array: array.to_string(),
                    min: SymExpr::zero(),
                    max: max.clone(),
                    loaded: !store,
                    stored: store,
                    stride_bytes: None,
                });
                if self.branch_depth == 0 {
                    let range = (SymExpr::zero(), max);
                    self.nest_refs.push(NestRef {
                        array: array.to_string(),
                        path: self.node_path.clone(),
                        ranges: vec![range; self.node_path.len() + 1],
                        idx: SymExpr::param(&format!("gather@{}", self.var_counter)),
                        stored: store,
                        stride_bytes: None,
                        gather: true,
                    });
                    self.var_counter += 1;
                } else {
                    self.nest_tainted = true;
                }
                return;
            }
        }
        self.nest_tainted = true;
        self.unknown.push(array.to_string());
    }

    fn is_poisoned(&self, e: &SymExpr) -> bool {
        e.params().iter().any(|p| self.poisoned.contains(p))
    }

    /// Index range over the enclosing iteration domain by interval
    /// substitution ([`sweep_dims`]), plus the dense-coverage check
    /// (`Some(stride_bytes)` when the range is gap-free up to that
    /// stride).
    fn range_of(&self, idx: &SymExpr) -> Option<(SymExpr, SymExpr, Option<i128>)> {
        let mut min = idx.clone();
        let mut max = idx.clone();
        let mut unknown_sign = false;
        if !sweep_dims(&self.loops, &mut min, &mut max, &mut unknown_sign) {
            return None;
        }
        let stride = if unknown_sign {
            None
        } else {
            self.dense_coverage(idx)
        };
        Some((min, max, stride))
    }

    /// Does the loop nest touch the index range with bounded gaps?
    /// `Some(stride_bytes)` when the per-variable strides chain up:
    /// trying the contributing variables in every order (≤ 3 dims in
    /// practice), the first stride must be a constant — it becomes the
    /// coverage gap, in bytes — and each next stride must equal the
    /// extent covered so far. The caller compares the gap against the
    /// line size ([`ArrayFootprint::exact_for`]); SSE2 packed accesses
    /// are just adjacent elements and need no special case.
    fn dense_coverage(&self, idx: &SymExpr) -> Option<i128> {
        struct Contrib {
            coeff: SymExpr,
            extent: SymExpr,
        }
        let mut contribs: Vec<Contrib> = Vec::new();
        for dim in &self.loops {
            if idx.degree_in(&dim.var) == 0 {
                continue;
            }
            if idx.degree_in(&dim.var) > 1 || idx.param_in_composite_atom(&dim.var) {
                return None;
            }
            let coeff = idx.coefficients_of(&dim.var)[1].clone();
            let coeff = match sign_of(&coeff) {
                Some(true) => coeff,
                Some(false) => coeff.neg_expr(),
                None => return None,
            };
            // trip count along this dimension, in index units of `coeff`:
            // a stride-s loop visits (hi-lo)/s + 1 values
            let extent = dim.extent();
            // the element stride seen by the index is coeff · loop step
            let coeff = if dim.step > 1 {
                coeff.scale(Rat::int(dim.step as i128))
            } else {
                coeff
            };
            contribs.push(Contrib { coeff, extent });
        }
        if contribs.is_empty() {
            return Some(ELEM_BYTES as i128); // a single element
        }
        let n = contribs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut best: Option<i128> = None;
        permute_check(&mut order, 0, &mut |perm: &[usize]| {
            let first = &contribs[perm[0]];
            let Some(c) = first.coeff.as_constant().and_then(|c| c.as_integer()) else {
                return false;
            };
            let mut covered = first.coeff.mul_expr(&contribs[perm[0]].extent);
            for &k in &perm[1..] {
                let contrib = &contribs[k];
                if !contrib.coeff.sub_expr(&covered).is_zero() {
                    return false;
                }
                covered = covered.mul_expr(&contrib.extent);
            }
            best = Some(c * ELEM_BYTES as i128);
            true
        });
        best
    }
}

/// Substitute each of `dims`' bounds into `min`/`max` (innermost loop
/// first, so inner bounds that reference outer variables resolve as we
/// go): a positive-coefficient variable takes its lower bound in `min`
/// and upper bound in `max`, a negative one the reverse. Returns `false`
/// when a dimension occurs non-affinely; sets `unknown_sign` when a
/// coefficient's sign was undecidable (the range stays a valid hull but
/// dense coverage must not be claimed).
fn sweep_dims(
    dims: &[LoopDim],
    min: &mut SymExpr,
    max: &mut SymExpr,
    unknown_sign: &mut bool,
) -> bool {
    for dim in dims.iter().rev() {
        for (range, subst_lo_when_pos) in [(&mut *min, true), (&mut *max, false)] {
            if range.degree_in(&dim.var) == 0 {
                continue;
            }
            if range.degree_in(&dim.var) > 1 || range.param_in_composite_atom(&dim.var) {
                return false;
            }
            let coeff = &range.coefficients_of(&dim.var)[1];
            let bound = match (sign_of(coeff), subst_lo_when_pos) {
                (Some(true), true) | (Some(false), false) => &dim.lo,
                (Some(true), false) | (Some(false), true) => &dim.hi,
                (None, lo) => {
                    *unknown_sign = true;
                    if lo {
                        &dim.lo
                    } else {
                        &dim.hi
                    }
                }
            };
            *range = range.substitute(&dim.var, bound);
        }
    }
    true
}

/// `Some(true)` for provably nonnegative, `Some(false)` for provably
/// nonpositive, `None` when the sign depends on parameter values.
/// Parameters are assumed nonnegative (they are problem sizes).
fn sign_of(e: &SymExpr) -> Option<bool> {
    let all_nonneg = e.terms().iter().all(|t| t.coeff >= Rat::ZERO);
    let all_nonpos = e.terms().iter().all(|t| t.coeff <= Rat::ZERO);
    if all_nonneg {
        Some(true)
    } else if all_nonpos {
        Some(false)
    } else {
        None
    }
}

/// Try all permutations of `order[at..]`; true if `check` accepts any.
fn permute_check(order: &mut Vec<usize>, at: usize, check: &mut dyn FnMut(&[usize]) -> bool) -> bool {
    if at == order.len() {
        return check(order);
    }
    for i in at..order.len() {
        order.swap(at, i);
        if permute_check(order, at + 1, check) {
            order.swap(at, i);
            return true;
        }
        order.swap(at, i);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_minic::frontend;
    use mira_sym::bindings;

    fn footprint(src: &str, func: &str) -> FuncFootprints {
        let p = frontend(src).expect("parses");
        analyze_program(&p).footprint(func)
    }

    #[test]
    fn unit_stride_stream() {
        let fp = footprint(
            "void triad(int n, double* a, double* b, double* c, double s) {\n\
             for (int i = 0; i < n; i++) { a[i] = b[i] + s * c[i]; }\n}",
            "triad",
        );
        assert!(fp.is_exact(64), "{fp:?}");
        assert_eq!(fp.arrays.len(), 3);
        let b = bindings(&[("n", 1024)]);
        for a in &fp.arrays {
            // 1024 × 8 B / 64 B = 128 lines per array
            assert_eq!(a.lines_expr(64).eval_count(&b).unwrap(), 128, "{}", a.array);
            assert_eq!(a.extent_bytes_expr().eval_count(&b).unwrap(), 8192);
        }
        let a = fp.array("a").unwrap();
        assert!(a.stored && !a.loaded);
        assert!(fp.array("b").unwrap().loaded);
        assert_eq!(fp.total_lines_expr(64).eval_count(&b).unwrap(), 384);
    }

    #[test]
    fn non_multiple_of_line_rounds_up() {
        let fp = footprint(
            "void f(int n, double* a) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }",
            "f",
        );
        // 100 elements = 800 bytes = 12.5 lines → 13 touched
        let b = bindings(&[("n", 100)]);
        assert_eq!(fp.array("a").unwrap().lines_expr(64).eval_count(&b).unwrap(), 13);
    }

    #[test]
    fn row_major_matrix_is_dense() {
        let fp = footprint(
            "void mm(int n, double* a, double* b, double* c) {\n\
             for (int i = 0; i < n; i++) {\n\
               for (int k = 0; k < n; k++) {\n\
                 for (int j = 0; j < n; j++) {\n\
                   c[i * n + j] += a[i * n + k] * b[k * n + j];\n\
                 } } } }",
            "mm",
        );
        assert!(fp.is_exact(64), "{fp:?}");
        let b = bindings(&[("n", 24)]);
        for a in &fp.arrays {
            // 576 doubles = 4608 B = 72 lines each
            assert_eq!(a.lines_expr(64).eval_count(&b).unwrap(), 72, "{}", a.array);
        }
        let c = fp.array("c").unwrap();
        assert!(c.loaded && c.stored, "`+=` reads and writes c");
    }

    #[test]
    fn strided_access_within_line_stays_dense() {
        // stride 4 elements = 32 B < 64 B line: every line touched
        let fp = footprint(
            "void f(int n, double* a) { for (int i = 0; i < n; i += 4) { a[i] = 0.0; } }",
            "f",
        );
        let a = fp.array("a").unwrap();
        assert!(a.exact_for(64), "{fp:?}");
        let b = bindings(&[("n", 64)]);
        // last index 60 → bytes [0, 488) → 8 lines
        assert_eq!(a.lines_expr(64).eval_count(&b).unwrap(), 8);
    }

    #[test]
    fn wide_stride_flagged_inexact() {
        // stride 16 elements = 128 B: every other line skipped — range
        // formula over-counts, so it must not claim exactness
        let fp = footprint(
            "void f(int n, double* a) { for (int i = 0; i < n; i += 16) { a[i] = 0.0; } }",
            "f",
        );
        assert!(!fp.array("a").unwrap().exact_for(64));
        assert!(!fp.is_exact(64));
    }

    #[test]
    fn data_dependent_index_reported_unknown() {
        let fp = footprint(
            "void g(int n, int* cols, double* x, double* y) {\n\
             for (int i = 0; i < n; i++) { y[i] = x[cols[i]]; } }",
            "g",
        );
        assert!(fp.unknown.contains(&"x".to_string()), "{fp:?}");
        assert!(fp.array("y").unwrap().exact_for(64));
        assert!(fp.array("cols").unwrap().exact_for(64));
        assert!(!fp.is_exact(64));
    }

    #[test]
    fn offset_references_union() {
        let fp = footprint(
            "void f(int n, int* r) { for (int i = 0; i < n; i++) { r[i] = r[i + 1]; } }",
            "f",
        );
        let r = fp.array("r").unwrap();
        let b = bindings(&[("n", 8)]);
        // union [0, n-1] ∪ [1, n] = [0, n] → 9 elements → 2 lines
        assert_eq!(r.min_index.eval_count(&b).unwrap(), 0);
        assert_eq!(r.max_index.eval_count(&b).unwrap(), 8);
        assert_eq!(r.lines_expr(64).eval_count(&b).unwrap(), 2);
    }

    #[test]
    fn footprints_compose_through_calls() {
        let fp = footprint(
            "void kern(int m, double* p, double* q) {\n\
               for (int i = 0; i < m; i++) { q[i] = p[i]; } }\n\
             void driver(int n, double* x, double* y) {\n\
               kern(n, x, y);\n\
               kern(n, y, x);\n}",
            "driver",
        );
        assert!(fp.is_exact(64), "{fp:?}");
        let b = bindings(&[("n", 16)]);
        let x = fp.array("x").unwrap();
        assert!(x.loaded && x.stored);
        assert_eq!(x.lines_expr(64).eval_count(&b).unwrap(), 2);
        assert_eq!(fp.arrays.len(), 2);
    }

    #[test]
    fn unmappable_pointer_argument_surfaces_as_unknown() {
        // the pointer argument is an assignment expression, not a plain
        // variable — the callee's traffic cannot be attributed to a
        // caller array, but it must not vanish from the footprint
        let src = "void kern(int m, double* p) {\n\
                     for (int i = 0; i < m; i++) { p[i] = 0.0; } }\n\
                   void f(int n, double* x, double* y) {\n\
                     kern(n, x = y);\n}";
        let p = frontend(src);
        let Ok(p) = p else {
            return; // front-end rejects the form: nothing to defend
        };
        let fp = analyze_program(&p).footprint("f");
        assert!(
            !fp.unknown.is_empty() && !fp.is_exact(64),
            "unmapped callee traffic must be flagged: {fp:?}"
        );
    }

    #[test]
    fn mutated_local_index_is_poisoned() {
        let fp = footprint(
            "void f(int n, double* a) {\n\
               int w = 0;\n\
               for (int i = 0; i < n; i++) { a[w] = 0.0; w = w + 2; } }",
            "f",
        );
        assert!(fp.unknown.contains(&"a".to_string()), "{fp:?}");
    }

    #[test]
    fn mutated_value_param_index_is_poisoned() {
        // `n` is reassigned inside the loop — indexing through it is not
        // an affine access function, even though `n` starts as a param
        let fp = footprint(
            "void f(int n, double* a) {\n\
               while (n > 0) { a[n] = 0.0; n = n - 1; } }",
            "f",
        );
        assert!(fp.unknown.contains(&"a".to_string()), "{fp:?}");
        assert!(!fp.is_exact(64));
    }

    #[test]
    fn mutated_param_poisons_loop_bound_too() {
        // the mutation happens *after* the loop, but the bound is still
        // not a function parameter at modeling granularity
        let fp = footprint(
            "void f(int n, double* a) {\n\
               for (int i = 0; i < n; i++) { a[i] = 0.0; }\n\
               n = 0; }",
            "f",
        );
        assert!(fp.unknown.contains(&"a".to_string()), "{fp:?}");
    }

    #[test]
    fn guarded_reference_is_upper_bound_not_exact() {
        // only every 100th element is touched; the range is a valid
        // bound but must not claim dense coverage
        let fp = footprint(
            "void f(int n, double* a) {\n\
               for (int i = 0; i < n; i++) {\n\
                 if (i % 100 == 0) { a[i] = 0.0; } } }",
            "f",
        );
        let a = fp.array("a").unwrap();
        assert!(!a.exact_for(64), "{fp:?}");
        assert!(!fp.is_exact(64));
        let b = bindings(&[("n", 800)]);
        assert_eq!(a.lines_expr(64).eval_count(&b).unwrap(), 100, "upper bound kept");
    }

    #[test]
    fn disjoint_constant_ranges_not_dense() {
        let fp = footprint(
            "void f(double* a) {\n\
               for (int i = 0; i < 4; i++) { a[i] = 0.0; }\n\
               for (int j = 1000; j < 1004; j++) { a[j] = 0.0; } }",
            "f",
        );
        let a = fp.array("a").unwrap();
        assert!(!a.exact_for(64), "gap between 3 and 1000: {fp:?}");
        // touching/overlapping constant ranges stay dense
        let fp = footprint(
            "void g(double* a) {\n\
               for (int i = 0; i < 16; i++) { a[i] = 0.0; }\n\
               for (int j = 16; j < 32; j++) { a[j] = 0.0; } }",
            "g",
        );
        assert!(fp.array("a").unwrap().exact_for(64), "{fp:?}");
    }

    #[test]
    fn cumulative_annotation_bounds_csr_arrays() {
        // the CSR matvec pattern: k sweeps row_ptr[i]..row_ptr[i+1], which
        // across all rows covers [0, nnz) densely; the gather x[cols[k]]
        // is bounded by the vector length
        let fp = footprint(
            "void matvec(int n, int* row_ptr, int* cols, double* vals, double* x, double* y) {\n\
               for (int i = 0; i < n; i++) {\n\
                 double s = 0.0;\n\
             #pragma @Annotation {lp_iters: nnz_row_milli, lp_scale: 0.001, lp_cumulative: yes, idx_extent: n}\n\
                 for (int k = row_ptr[i]; k < row_ptr[i + 1]; k++) {\n\
                   s += vals[k] * x[cols[k]];\n\
                 }\n\
                 y[i] = s;\n\
               } }",
            "matvec",
        );
        assert!(fp.unknown.is_empty(), "annotations close every case: {fp:?}");
        let b = bindings(&[("n", 216), ("nnz_row_milli", 6000)]);
        // vals and cols cover [0, n·6 - 1] densely — exact footprints
        for arr in ["vals", "cols"] {
            let a = fp.array(arr).unwrap();
            assert!(a.exact_for(64), "{arr}: {fp:?}");
            assert_eq!(a.max_index.eval_count(&b).unwrap(), 1295, "{arr}");
            // 1296 elements · 8 B / 64 B = 162 lines
            assert_eq!(a.lines_expr(64).eval_count(&b).unwrap(), 162, "{arr}");
        }
        // the gather target is bounded to [0, n-1] but never exact
        let x = fp.array("x").unwrap();
        assert!(!x.exact_for(64));
        assert_eq!(x.max_index.eval_count(&b).unwrap(), 215);
        assert_eq!(x.lines_expr(64).eval_count(&b).unwrap(), 27);
        // affine neighbours keep their exactness
        assert!(fp.array("row_ptr").unwrap().exact_for(64));
        assert!(fp.array("y").unwrap().exact_for(64));
        assert!(!fp.is_exact(64), "the bound on x is not dense coverage");
    }

    #[test]
    fn cumulative_prefix_restarts_under_an_outer_reps_loop() {
        // wrapping the annotated CSR nest in a benchmark-style reps loop
        // must not inflate the claimed-dense range: the prefix restarts
        // at row_ptr[0] on every repetition, so the union stays [0, n·t)
        let fp = footprint(
            "void bench(int n, int reps, int* row_ptr, int* cols, double* vals, double* x, double* y) {\n\
               for (int r = 0; r < reps; r++) {\n\
                 for (int i = 0; i < n; i++) {\n\
                   double s = 0.0;\n\
             #pragma @Annotation {lp_iters: nnz_row_milli, lp_scale: 0.001, lp_cumulative: yes, idx_extent: n}\n\
                   for (int k = row_ptr[i]; k < row_ptr[i + 1]; k++) {\n\
                     s += vals[k] * x[cols[k]];\n\
                   }\n\
                   y[i] = s;\n\
                 } } }",
            "bench",
        );
        let b = bindings(&[("n", 216), ("reps", 5), ("nnz_row_milli", 6000)]);
        for arr in ["vals", "cols"] {
            let a = fp.array(arr).unwrap();
            assert_eq!(
                a.max_index.eval_count(&b).unwrap(),
                1295,
                "{arr}: reps must not scale the prefix"
            );
            assert!(a.exact_for(64), "{arr}: {fp:?}");
        }
    }

    #[test]
    fn idx_extent_without_cumulative_still_bounds_gathers() {
        // a histogram update: the write target is data-dependent but
        // bounded; the loop itself is affine
        let fp = footprint(
            "void hist(int n, int bins, int* idx, double* h) {\n\
             #pragma @Annotation {idx_extent: bins}\n\
               for (int i = 0; i < n; i++) { h[idx[i]] = h[idx[i]] + 1.0; } }",
            "hist",
        );
        assert!(fp.unknown.is_empty(), "{fp:?}");
        let h = fp.array("h").unwrap();
        assert!(h.loaded && h.stored);
        assert!(!h.exact_for(64), "upper bound only");
        let b = bindings(&[("n", 100), ("bins", 64)]);
        assert_eq!(h.max_index.eval_count(&b).unwrap(), 63);
        assert_eq!(h.lines_expr(64).eval_count(&b).unwrap(), 8);
        assert!(fp.array("idx").unwrap().exact_for(64));
    }

    #[test]
    fn unannotated_csr_still_unknown() {
        // without the annotation nothing changes: data-dependent loops
        // and gathers stay unknown rather than silently estimated
        let fp = footprint(
            "void matvec(int n, int* row_ptr, int* cols, double* vals, double* x, double* y) {\n\
               for (int i = 0; i < n; i++) {\n\
                 double s = 0.0;\n\
                 for (int k = row_ptr[i]; k < row_ptr[i + 1]; k++) {\n\
                   s += vals[k] * x[cols[k]];\n\
                 }\n\
                 y[i] = s;\n\
               } }",
            "matvec",
        );
        for arr in ["vals", "cols", "x"] {
            assert!(fp.unknown.contains(&arr.to_string()), "{arr}: {fp:?}");
        }
    }

    // ---- per-nest working-set model ----

    fn nest(src: &str, func: &str) -> NestModel {
        let p = frontend(src).expect("parses");
        analyze_program(&p)
            .nest_model(func, 64)
            .expect("nest model builds")
    }

    const MM_SRC: &str = "void mm(int n, int reps, double* a, double* b, double* c) {\n\
         for (int r = 0; r < reps; r++) {\n\
           for (int i = 0; i < n; i++) {\n\
             for (int k = 0; k < n; k++) {\n\
               for (int j = 0; j < n; j++) {\n\
                 c[i * n + j] += a[i * n + k] * b[k * n + j];\n\
               } } } } }";

    #[test]
    fn dgemm_per_nest_working_sets() {
        let nm = nest(MM_SRC, "mm");
        assert!(nm.exact(), "{nm:?}");
        assert_eq!(nm.nodes.len(), 4, "r, i, k, j");
        let b = bindings(&[("n", 40), ("reps", 1)]);
        // one r iteration touches everything: 3 × 200 lines
        assert_eq!(nm.nodes[0].ws_lines.eval_count(&b).unwrap(), 600);
        // one i iteration: a row (5) + c row (5) + all of b (200)
        assert_eq!(nm.nodes[1].ws_lines.eval_count(&b).unwrap(), 210);
        // one k iteration: c row + b row + one a element's line
        assert_eq!(nm.nodes[2].ws_lines.eval_count(&b).unwrap(), 11);
        // one j iteration: three lines
        assert_eq!(nm.nodes[3].ws_lines.eval_count(&b).unwrap(), 3);
        assert_eq!(nm.nodes[1].extent.eval_count(&b).unwrap(), 40);
    }

    #[test]
    fn dgemm_n40_boundary_traffic_is_compulsory_at_l1_capacity() {
        // the ROADMAP case: the whole 38400-byte footprint exceeds a
        // 32 KiB L1, but the per-i working set (two rows + all of b)
        // fits — every array moves compulsory lines only
        let nm = nest(MM_SRC, "mm");
        let b = bindings(&[("n", 40), ("reps", 1)]);
        let t = nm.boundary_traffic(32 * 1024, &b).unwrap();
        assert_eq!(t.fill_lines, 600, "compulsory fills only");
        assert_eq!(t.writeback_lines, 200, "c written back once");
        // a 1 KiB cache captures only the k-level working set: b is
        // re-swept once per i iteration (n × 200 lines), a and c stay
        // compulsory (their rows stream monotonically)
        let t = nm.boundary_traffic(1024, &b).unwrap();
        assert_eq!(t.fill_lines, 200 + 200 + 40 * 200);
        assert_eq!(t.writeback_lines, 200);
    }

    #[test]
    fn repetition_loop_multiplies_uncaptured_traffic() {
        let nm = nest(
            "void triad(int n, int reps, double* a, double* b, double* c, double s) {\n\
               for (int r = 0; r < reps; r++) {\n\
                 for (int i = 0; i < n; i++) {\n\
                   a[i] = b[i] + s * c[i];\n\
                 } } }",
            "triad",
        );
        assert!(nm.exact());
        let b = bindings(&[("n", 20000), ("reps", 2)]);
        // 3 × 2500 lines per sweep; the per-rep working set exceeds the
        // cap, so each rep re-fills every array and re-evicts a dirty
        let t = nm.boundary_traffic(256 * 1024, &b).unwrap();
        assert_eq!(t.fill_lines, 3 * 2500 * 2);
        assert_eq!(t.writeback_lines, 2500 * 2);
        // a cache that holds the whole 480000-byte footprint captures
        // the rep-carried reuse: compulsory only
        let t = nm.boundary_traffic(1 << 20, &b).unwrap();
        assert_eq!(t.fill_lines, 3 * 2500);
        assert_eq!(t.writeback_lines, 2500);
    }

    #[test]
    fn stencil_offsets_sum_when_uncaptured() {
        // a 5-point-style row stencil: the three row-offset reads of u
        // are reuse carried by the i loop (offset n = i's coefficient);
        // once three rows no longer fit, each offset re-fills its range
        let src = "void relax(int n, double* u, double* out) {\n\
             for (int i = 1; i < n - 1; i++) {\n\
               for (int j = 0; j < n; j++) {\n\
                 out[i * n + j] = u[(i - 1) * n + j] + u[i * n + j] + u[(i + 1) * n + j];\n\
               } } }";
        let nm = nest(src, "relax");
        let gu = nm.groups.iter().find(|g| g.array == "u").expect("u grouped");
        let go = nm.groups.iter().find(|g| g.array == "out").expect("out grouped");
        assert_eq!(gu.union_capture_level, 1, "carried by the i loop");
        assert_eq!(go.union_capture_level, usize::MAX, "single access");
        let b = bindings(&[("n", 64)]);
        let union_lines = gu.lines.eval_count(&b).unwrap();
        let sum_lines = gu.sum_lines.eval_count(&b).unwrap();
        let out_lines = go.lines.eval_count(&b).unwrap();
        assert!(sum_lines > union_lines, "{sum_lines} vs {union_lines}");
        // captured (one i iteration = 4 rows = 32 lines fit): union
        let t = nm.boundary_traffic(8 * 1024, &b).unwrap();
        assert_eq!(t.fill_lines, union_lines + out_lines);
        assert_eq!(t.writeback_lines, out_lines);
        // uncaptured (rows no longer fit): the three offsets re-fill
        let t = nm.boundary_traffic(1024, &b).unwrap();
        assert_eq!(t.fill_lines, sum_lines + out_lines);
    }

    #[test]
    fn nest_model_refuses_unattributable_traffic() {
        // guarded reference
        let p = frontend(
            "void f(int n, double* a) {\n\
               for (int i = 0; i < n; i++) { if (i % 2 == 0) { a[i] = 0.0; } } }",
        )
        .unwrap();
        assert!(analyze_program(&p).nest_model("f", 64).is_none());
        // unbounded data-dependent index
        let p = frontend(
            "void g(int n, int* cols, double* x, double* y) {\n\
               for (int i = 0; i < n; i++) { y[i] = x[cols[i]]; } }",
        )
        .unwrap();
        assert!(analyze_program(&p).nest_model("g", 64).is_none());
        // guarded call: the callee's repetition count is unknown
        let p = frontend(
            "void kern(int m, double* p) { for (int i = 0; i < m; i++) { p[i] = 0.0; } }\n\
             void f(int n, double* x) { if (n > 1) { kern(n, x); } }",
        )
        .unwrap();
        let am = analyze_program(&p);
        assert!(am.nest_model("f", 64).is_none());
        assert!(am.nest_model("kern", 64).is_some(), "the leaf still models");
    }

    #[test]
    fn composed_callee_nests_splice_into_caller() {
        // the callee's loop forest inlines under the call site with
        // formal→actual substitution: f places per-nest like inlined code
        let p = frontend(
            "void kern(int m, double* p) { for (int i = 0; i < m; i++) { p[i] = 0.0; } }\n\
             void f(int n, double* x) { kern(n, x); }",
        )
        .unwrap();
        let am = analyze_program(&p);
        let nm = am.nest_model("f", 64).expect("composed callee splices");
        assert_eq!(nm.nodes.len(), 1);
        let b = bindings(&[("n", 64)]);
        assert_eq!(nm.nodes[0].extent.eval_count(&b).unwrap(), 64);
        let g = &nm.groups[0];
        assert_eq!(g.array, "x", "formal p maps to actual x");
        let t = nm.boundary_traffic(64, &b).unwrap();
        assert_eq!(t.fill_lines, 8);
        assert_eq!(t.writeback_lines, 8);
        // a repetition loop around the call multiplies uncaptured traffic
        let p = frontend(
            "void kern(int m, double* p) { for (int i = 0; i < m; i++) { p[i] = p[i] + 1.0; } }\n\
             void f(int n, int reps, double* x) {\n\
               for (int r = 0; r < reps; r++) { kern(n, x); } }",
        )
        .unwrap();
        let am = analyze_program(&p);
        let nm = am.nest_model("f", 64).expect("call under a loop splices");
        let b = bindings(&[("n", 512), ("reps", 10)]);
        // 512 doubles = 64 lines; captured: compulsory once
        let t = nm.boundary_traffic(8 * 1024, &b).unwrap();
        assert_eq!(t.fill_lines, 64);
        assert_eq!(t.writeback_lines, 64);
        // uncaptured: every rep re-fills and re-dirties the sweep
        let t = nm.boundary_traffic(1024, &b).unwrap();
        assert_eq!(t.fill_lines, 640);
        assert_eq!(t.writeback_lines, 640);
    }

    #[test]
    fn triangular_extents_average_exactly() {
        // the inner trip count varies with i: the model admits it with
        // the closed-form average extent (n-1)/2, so the uncaptured
        // multipliers recover the exact total n·(n-1)/2 sweep count
        let p = frontend(
            "void f(int n, double* a) {\n\
               for (int i = 0; i < n; i++) {\n\
                 for (int r = 0; r < i; r++) {\n\
                   for (int j = 0; j < n; j++) { a[j] = a[j] + 1.0; } } } }",
        )
        .unwrap();
        let nm = analyze_program(&p)
            .nest_model("f", 64)
            .expect("triangular repetition admits");
        let b = bindings(&[("n", 64)]);
        let avg = nm.nodes[1].extent.eval(&b).unwrap();
        assert_eq!(avg, Rat::new(63, 2), "average of 0..=63");
        // captured at 8 KiB (a = 8 lines fits): compulsory only
        let t = nm.boundary_traffic(8 * 1024, &b).unwrap();
        assert_eq!(t.fill_lines, 8);
        assert_eq!(t.writeback_lines, 8);
        // nothing fits: each of the n·(n-1)/2 = 2016 sweeps re-fills
        let t = nm.boundary_traffic(64, &b).unwrap();
        assert_eq!(t.fill_lines, 2016 * 8);
        assert_eq!(t.writeback_lines, 2016 * 8);
        // tiled bounds cancel to a constant extent and stay modelable
        let p = frontend(
            "void g(int n, double* a) {\n\
               for (int ii = 0; ii < n; ii += 8) {\n\
                 for (int i = ii; i < ii + 8; i++) { a[i] = 0.0; } } }",
        )
        .unwrap();
        assert!(analyze_program(&p).nest_model("g", 64).is_some());
        // a second triangular loop over the *same* ancestor still
        // refuses: products of two averages stop being exact
        let p = frontend(
            "void h(int n, double* a) {\n\
               for (int i = 0; i < n; i++) {\n\
                 for (int r = 0; r < i; r++) { a[0] = 1.0; }\n\
                 for (int s = 0; s < i; s++) { a[1] = 1.0; } } }",
        )
        .unwrap();
        assert!(analyze_program(&p).nest_model("h", 64).is_none());
    }

    #[test]
    fn straight_line_references_count_once() {
        let nm = nest(
            "void edge(int n, double* a) { a[0] = 1.0; a[n - 1] = 2.0; }",
            "edge",
        );
        let b = bindings(&[("n", 1024)]);
        let t = nm.boundary_traffic(64, &b).unwrap();
        assert_eq!(t.fill_lines, 2);
        assert_eq!(t.writeback_lines, 2);
    }

    #[test]
    fn exactness_is_line_size_aware() {
        // stride 8 elements = 64 B: dense at 64-byte lines, gapped at 32
        let fp = footprint(
            "void f(int n, double* a) { for (int i = 0; i < n; i += 8) { a[i] = 0.0; } }",
            "f",
        );
        let a = fp.array("a").unwrap();
        assert_eq!(a.stride_bytes, Some(64));
        assert!(a.exact_for(64));
        assert!(!a.exact_for(32));
        // line sizes above the allocator's 64-byte alignment are never
        // claimed exact (base alignment can no longer be assumed)
        assert!(!a.exact_for(128));
    }
}
