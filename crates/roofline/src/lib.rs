//! # mira-roofline — symbolic roofline bounds from the static byte/FLOP models
//!
//! Mira's end goal (paper §IV-D) is not counting instructions: it is
//! using statically derived arithmetic intensity to place a kernel on a
//! roofline and explain what bounds it. This crate is the consumer of
//! everything the byte models built — it combines
//!
//! * the closed-form FLOP and *data* byte expressions of
//!   [`mira_model::Model`] (frame/spill traffic excluded — it is a
//!   register-allocation artifact, not memory-wall pressure),
//! * the distinct-cache-line footprints of [`mira_mem::access`], and
//! * the machine's `[peak]`/`[bandwidth *]` sections from `mira-arch`
//!
//! into per-function (and per-loop-nest) **time bounds in cycles**: one
//! compute ceiling (`FLOPs / peak`) against one memory ceiling per
//! hierarchy boundary (`traffic / bandwidth`). The largest bound is the
//! **binding ceiling**; a kernel is *memory-bound* when any memory
//! ceiling is at least the compute ceiling, and the level that binds
//! names the roof it sits under.
//!
//! Per-level traffic is modeled piecewise with a reuse-distance
//! refinement. When the kernel's whole distinct-line footprint fits in
//! the level above, only compulsory traffic crosses the boundary (cold
//! fills of every touched line, plus the eventual write-back of every
//! stored line). When it does not, the per-nest working-set model
//! ([`mira_mem::NestModel`]) places each array's traffic at the
//! shallowest level whose capacity holds the relevant working set:
//! inner-loop reuse hits L1, loop-carried reuse hits the level that
//! holds the carried set, and only genuinely uncaptured re-sweeps
//! multiply the compulsory lines — so a blocked kernel whose footprint
//! slightly exceeds a level (DGEMM at n=40) still counts
//! compulsory-only traffic, exactly what the cache simulator observes.
//! The nest model composes across calls (callee nests splice under the
//! call site with formal→actual substitution), admits triangular trip
//! counts via exact average extents, and bounds `idx_extent`-annotated
//! gathers — so a composed solver like miniFE's `cg_solve` places
//! per-nest like inlined code. Kernels whose traffic still cannot be
//! attributed (guarded references or calls, unanalyzable loops) fall
//! back to the old binary sweep — every loaded byte crosses once and
//! every stored byte twice (write-allocate fill plus write-back), which
//! for unit-stride streaming kernels coincides with the working-set
//! count.
//!
//! Because the bounds are [`SymExpr`] closed forms, regime questions are
//! *solvable*: [`KernelRoofline::crossover`] finds the exact parameter
//! value at which the binding ceiling changes — e.g. the `n` where DGEMM
//! leaves the DRAM roof because its `O(n²)` compulsory traffic is
//! overtaken by `O(n³)` compute — and
//! [`KernelRoofline::crossover_sweep`] is the brute-force oracle the
//! tests pin it against.
//!
//! ## Budgets and refusal
//!
//! [`KernelRoofline::analyze`] and [`KernelRoofline::place`] run their
//! symbolic work under an analysis budget ([`mira_sym::budget`]). A
//! tripped budget (fuel exhausted, recursion too deep, coefficient
//! overflow) surfaces as a typed refusal —
//! [`mira_sym::EvalError::Budget`] wrapped in the normal error path —
//! rather than a panic or a hang, and concrete evaluation of the
//! closed forms is checked against signed 64-bit range, so
//! adversarially huge parameters refuse instead of wrapping. Missing
//! nest models (including budget-refused ones from `mira-mem`) degrade
//! to the conservative streaming sweep, keeping every answer a sound
//! upper bound on traffic.
//!
//! The dynamic counterpart, [`dynamic_placement`], feeds the cache
//! simulator's per-level fill *and write-back* counters
//! ([`MemStats::beyond_l1_bytes`]/[`MemStats::beyond_l2_bytes`]) through
//! the same ceilings, so static and simulated placements can be diffed —
//! `mira_workloads::roofval` and `bench_roofline` pin their agreement on
//! STREAM, DGEMM and miniFE.

use mira_arch::ArchDescription;
use mira_core::Analysis;
use mira_mem::MemStats;
use mira_model::{Model, ModelError, ModelOp};
use mira_sym::{Bindings, EvalError, Rat, SymExpr};
use std::fmt;

/// One memory-hierarchy boundary a roofline ceiling caps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemLevel {
    /// Core ↔ L1 load/store bandwidth.
    L1,
    /// L1 ↔ L2 fill/write-back path.
    L2,
    /// L2 ↔ memory path.
    Dram,
}

impl MemLevel {
    pub const ALL: [MemLevel; 3] = [MemLevel::L1, MemLevel::L2, MemLevel::Dram];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            MemLevel::L1 => "l1",
            MemLevel::L2 => "l2",
            MemLevel::Dram => "dram",
        }
    }
}

/// A roofline ceiling: the compute roof or one memory roof.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ceiling {
    Compute,
    Mem(MemLevel),
}

impl Ceiling {
    pub fn name(self) -> &'static str {
        match self {
            Ceiling::Compute => "compute",
            Ceiling::Mem(l) => l.name(),
        }
    }

    /// Parse the canonical [`Ceiling::name`] form back (for trajectory
    /// files).
    pub fn from_name(s: &str) -> Option<Ceiling> {
        match s {
            "compute" => Some(Ceiling::Compute),
            "l1" => Some(Ceiling::Mem(MemLevel::L1)),
            "l2" => Some(Ceiling::Mem(MemLevel::L2)),
            "dram" => Some(Ceiling::Mem(MemLevel::Dram)),
            _ => None,
        }
    }
}

impl fmt::Display for Ceiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A kernel placed against the ceilings: one lower time bound per roof,
/// in cycles, and which roof binds.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Placement {
    pub compute_cycles: f64,
    /// Indexed by [`MemLevel::index`].
    pub mem_cycles: [f64; 3],
    pub binding: Ceiling,
}

impl Placement {
    /// Build a placement from the four bounds, picking the binding roof
    /// deterministically: among the memory levels the *deepest* one with
    /// the maximal bound wins (a tie means the kernel saturates both
    /// boundaries — the slower, farther level is the honest answer), and
    /// the compute roof binds only when it strictly exceeds every memory
    /// bound (a tie there is still a memory wall).
    pub fn classify(compute_cycles: f64, mem_cycles: [f64; 3]) -> Placement {
        let mut binding = Ceiling::Mem(MemLevel::L1);
        let mut best = mem_cycles[0];
        for level in [MemLevel::L2, MemLevel::Dram] {
            if mem_cycles[level.index()] >= best {
                best = mem_cycles[level.index()];
                binding = Ceiling::Mem(level);
            }
        }
        if compute_cycles > best {
            binding = Ceiling::Compute;
        }
        Placement {
            compute_cycles,
            mem_cycles,
            binding,
        }
    }

    /// The overall lower time bound: the binding ceiling's cycles.
    pub fn cycles(&self) -> f64 {
        self.compute_cycles
            .max(self.mem_cycles[0])
            .max(self.mem_cycles[1])
            .max(self.mem_cycles[2])
    }

    pub fn memory_bound(&self) -> bool {
        matches!(self.binding, Ceiling::Mem(_))
    }

    /// Cycles bound of one specific ceiling.
    pub fn ceiling_cycles(&self, c: Ceiling) -> f64 {
        match c {
            Ceiling::Compute => self.compute_cycles,
            Ceiling::Mem(l) => self.mem_cycles[l.index()],
        }
    }

    /// Same bound class (compute- vs memory-bound) *and* same binding
    /// roof — the agreement predicate between static and simulated
    /// placements.
    pub fn agrees_with(&self, other: &Placement) -> bool {
        self.binding == other.binding
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bound under the {} roof (compute {:.0} | l1 {:.0} | l2 {:.0} | dram {:.0} cycles)",
            if self.memory_bound() { "memory" } else { "compute" },
            self.binding,
            self.compute_cycles,
            self.mem_cycles[0],
            self.mem_cycles[1],
            self.mem_cycles[2],
        )
    }
}

/// The machine side of the roofline, pulled out of an architecture
/// description: peak FLOP rates, per-boundary bandwidths, capacities.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Ceilings {
    /// Peak scalar / packed FLOPs per cycle.
    pub peak_scalar: u32,
    pub peak_vector: u32,
    /// Bytes per cycle per boundary, indexed by [`MemLevel::index`].
    pub bandwidth: [u32; 3],
    /// Capacity of the level *above* each boundary: crossing traffic is
    /// compulsory-only when the footprint fits there. `None` for L1 —
    /// every access crosses the core↔L1 boundary regardless.
    pub capacity_above: [Option<u64>; 3],
    pub line_bytes: u32,
}

impl Ceilings {
    pub fn from_arch(arch: &ArchDescription) -> Ceilings {
        let m = &arch.machine;
        Ceilings {
            peak_scalar: m.peak.scalar_flops_per_cycle(),
            peak_vector: m.peak.vector_flops_per_cycle(m.fp_lanes_per_vector),
            bandwidth: [m.bandwidth.l1, m.bandwidth.l2, m.bandwidth.dram],
            capacity_above: [
                None,
                Some(m.l1.size_bytes as u64),
                Some(m.l2.size_bytes as u64),
            ],
            line_bytes: m.cache_line_bytes,
        }
    }

    /// Peak FLOPs/cycle for a kernel, by whether it retires packed
    /// arithmetic.
    pub fn peak(&self, vectorized: bool) -> u32 {
        if vectorized {
            self.peak_vector
        } else {
            self.peak_scalar
        }
    }
}

/// The static roofline model of one function: closed-form FLOPs, data
/// bytes and footprints, ready to be placed at any parameter binding.
#[derive(Clone, Debug)]
pub struct KernelRoofline {
    pub func: String,
    /// Packed-aware FLOPs per call.
    pub flops: SymExpr,
    /// Heap-data bytes per call (frame/spill traffic excluded).
    pub data_load_bytes: SymExpr,
    pub data_store_bytes: SymExpr,
    /// Distinct cache lines touched (all analyzed arrays).
    pub footprint_lines: SymExpr,
    /// Distinct lines of *stored* arrays — each eventually crosses every
    /// boundary again as a write-back.
    pub stored_lines: SymExpr,
    /// Every array was analyzable (annotations included): the footprint
    /// is a true total, not a lower bound over the analyzed subset.
    pub footprint_known: bool,
    /// The kernel retires packed FP arithmetic, so the vector peak is its
    /// compute ceiling.
    pub vectorized: bool,
    /// The per-nest working-set traffic model (reuse-distance
    /// refinement): present when every reference lives in an affine nest
    /// of the function's own body. `None` falls back to the
    /// whole-footprint fits-or-streams regime choice.
    pub nest_model: Option<mira_mem::NestModel>,
}

/// Where one parameter value sits relative to a regime change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Crossover {
    /// Smallest parameter value (in the searched window) whose binding
    /// ceiling differs from the window's start.
    pub value: i128,
    pub from: Ceiling,
    pub to: Ceiling,
}

impl KernelRoofline {
    /// Build the static roofline model of `func` from an analysis.
    ///
    /// Runs under a [`mira_sym::budget`] scope: if combining the model's
    /// closed forms trips the analysis budget, the kernel is refused with
    /// a typed error instead of hanging. (The access analysis and nest
    /// model inside are separately budgeted and degrade on their own —
    /// see [`mira_mem::analyze_program`].)
    pub fn analyze(analysis: &Analysis, func: &str) -> Result<KernelRoofline, ModelError> {
        let mut sp = mira_probe::span("roofline.analyze", "roofline");
        sp.arg("func", func);
        match mira_sym::budget::with_default_budget(|| Self::analyze_inner(analysis, func)) {
            Ok(r) => r,
            Err(e) => {
                sp.arg("refused", "budget");
                Err(ModelError::Eval(EvalError::Budget(e)))
            }
        }
    }

    fn analyze_inner(analysis: &Analysis, func: &str) -> Result<KernelRoofline, ModelError> {
        let model = &analysis.model;
        let flops = model.flops_expr(func)?;
        // packed arithmetic retires more FLOPs than FP instructions; for
        // scalar code the two closed forms coincide
        let fpi = model.fpi_expr(func, &analysis.arch)?;
        let vectorized = !flops.sub_expr(&fpi).is_zero();
        let access = mira_mem::analyze_program(&analysis.program);
        let fp = access.footprint(func);
        let line = analysis.arch.machine.cache_line_bytes;
        let mut stored = SymExpr::zero();
        for a in &fp.arrays {
            if a.stored {
                stored = stored.add_expr(&a.lines_expr(line));
            }
        }
        Ok(KernelRoofline {
            func: func.to_string(),
            flops,
            data_load_bytes: model.data_load_bytes_expr(func)?,
            data_store_bytes: model.data_store_bytes_expr(func)?,
            footprint_lines: fp.total_lines_expr(line),
            stored_lines: stored,
            footprint_known: fp.unknown.is_empty(),
            vectorized,
            nest_model: access.nest_model(func, line),
        })
    }

    /// Total data bytes per call, as a closed form.
    pub fn data_bytes(&self) -> SymExpr {
        self.data_load_bytes.add_expr(&self.data_store_bytes)
    }

    /// The compute ceiling in cycles: `FLOPs / peak`.
    pub fn compute_cycles_expr(&self, c: &Ceilings) -> SymExpr {
        self.flops.scale(Rat::new(1, c.peak(self.vectorized) as i128))
    }

    /// The L1 ceiling in cycles: every data byte crosses the core↔L1
    /// boundary (`bytes / bw_l1`), footprint regardless.
    pub fn l1_cycles_expr(&self, c: &Ceilings) -> SymExpr {
        self.data_bytes().scale(Rat::new(1, c.bandwidth[0] as i128))
    }

    /// The streaming-regime bound of a deeper boundary: the working set
    /// does not fit above, so every loaded byte crosses once (its fill)
    /// and every stored byte twice — the write-allocate fill on the way
    /// in and the dirty write-back on the way out, exactly what the
    /// simulator's fill + write-back counters observe for unit-stride
    /// streams.
    pub fn streaming_cycles_expr(&self, c: &Ceilings, level: MemLevel) -> SymExpr {
        self.data_load_bytes
            .add_expr(&self.data_store_bytes.scale(Rat::int(2)))
            .scale(Rat::new(1, c.bandwidth[level.index()] as i128))
    }

    /// The resident-regime bound of a deeper boundary: the working set
    /// fits above, so only compulsory traffic crosses — one cold fill per
    /// touched line, one eventual write-back per stored line.
    pub fn resident_cycles_expr(&self, c: &Ceilings, level: MemLevel) -> SymExpr {
        self.footprint_lines
            .add_expr(&self.stored_lines)
            .scale(Rat::new(
                c.line_bytes as i128,
                c.bandwidth[level.index()] as i128,
            ))
    }

    /// Place the kernel at concrete parameter values: evaluate the four
    /// ceilings and classify.
    ///
    /// Each deeper boundary's traffic is chosen piecewise. When the
    /// whole footprint fits in the level above, only compulsory traffic
    /// crosses ([`KernelRoofline::resident_cycles_expr`]). Otherwise the
    /// per-nest working-set model refines the old binary sweep: each
    /// array's traffic is placed at the shallowest level whose capacity
    /// holds the relevant per-iteration working set, so inner-loop reuse
    /// hits L1, loop-carried reuse hits the level that holds the carried
    /// set, and only genuinely uncaptured re-sweeps multiply
    /// ([`mira_mem::NestModel::boundary_traffic`]).
    ///
    /// When the per-nest model is unavailable (guarded references or
    /// calls, unanalyzable loops — composed callees and triangular
    /// nests now model) the boundary falls back to the streaming bound, and
    /// when the footprint is *not* fully known (unanalyzed, unannotated
    /// arrays) the analyzed lines are only a lower bound, so the
    /// fits-above test cannot be trusted — a kernel with data-dependent
    /// accesses the analysis could not bound is assumed to sweep, never
    /// to sit compulsory-only in cache.
    pub fn place(&self, c: &Ceilings, b: &Bindings) -> Result<Placement, EvalError> {
        let _a = mira_probe::accum("roofline.place");
        // placement evaluates closed forms over untrusted bindings; the
        // budget scope bounds evaluation depth and work, refusing with a
        // typed error instead of overflowing the host stack
        match mira_sym::budget::with_default_budget(|| self.place_inner(c, b)) {
            Ok(r) => r,
            Err(e) => Err(EvalError::Budget(e)),
        }
    }

    fn place_inner(&self, c: &Ceilings, b: &Bindings) -> Result<Placement, EvalError> {
        let compute = self.compute_cycles_expr(c).eval(b)?.to_f64();
        // only consulted in the known-footprint case — an unanalyzable
        // kernel's placement must not require the partial footprint to
        // be evaluable
        let footprint_bytes = if self.footprint_known {
            self.footprint_lines.eval_count(b)? * c.line_bytes as i128
        } else {
            0
        };
        let mut mem = [0.0; 3];
        mem[0] = self.l1_cycles_expr(c).eval(b)?.to_f64();
        for level in [MemLevel::L2, MemLevel::Dram] {
            let cap = c.capacity_above[level.index()].unwrap_or(0) as i128;
            mem[level.index()] = if self.footprint_known && footprint_bytes <= cap {
                self.resident_cycles_expr(c, level).eval(b)?.to_f64()
            } else if let Some(nest) = &self.nest_model {
                let t = nest.boundary_traffic(cap.max(0) as u64, b)?;
                t.total_lines() as f64 * c.line_bytes as f64
                    / c.bandwidth[level.index()] as f64
            } else {
                self.streaming_cycles_expr(c, level).eval(b)?.to_f64()
            };
        }
        Ok(Placement::classify(compute, mem))
    }

    /// Solve for the regime crossover of `param` in `[lo, hi]`: the
    /// smallest value whose binding ceiling differs from the one at `lo`,
    /// found by bisection over the closed forms — valid when the window
    /// contains a single regime change (the binding is monotone in the
    /// predicate "still under the starting roof"), which is what the
    /// polynomial growth orders of the bounds give on any window that
    /// stays within one capacity regime shape. `None` when the binding
    /// never changes. [`KernelRoofline::crossover_sweep`] is the
    /// assumption-free oracle.
    pub fn crossover(
        &self,
        c: &Ceilings,
        param: &str,
        base: &Bindings,
        lo: i128,
        hi: i128,
    ) -> Result<Option<Crossover>, EvalError> {
        let mut sp = mira_probe::span("roofline.crossover", "roofline");
        sp.arg("func", &self.func);
        sp.arg("param", param);
        let mut b = base.clone();
        crossover_bisect(lo, hi, |v| {
            b.insert(param.to_string(), v);
            Ok(self.place(c, &b)?.binding)
        })
    }

    /// Brute-force crossover: walk every value of `param` in `[lo, hi]`
    /// and report the first whose binding differs from the one at `lo`.
    pub fn crossover_sweep(
        &self,
        c: &Ceilings,
        param: &str,
        base: &Bindings,
        lo: i128,
        hi: i128,
    ) -> Result<Option<Crossover>, EvalError> {
        let mut b = base.clone();
        b.insert(param.to_string(), lo);
        let from = self.place(c, &b)?.binding;
        for v in lo + 1..=hi {
            b.insert(param.to_string(), v);
            let binding = self.place(c, &b)?.binding;
            if binding != from {
                return Ok(Some(Crossover {
                    value: v,
                    from,
                    to: binding,
                }));
            }
        }
        Ok(None)
    }
}

/// The bisection core of [`KernelRoofline::crossover`], generic over
/// how a parameter value is placed: `place_at(v)` returns the binding
/// ceiling at `v`. Shared by the tree-walk crossover above and the
/// compiled-evaluator crossover in `mira-serve`, so both tiers solve
/// regime changes with the identical search — any answer difference
/// between them can only come from the placement evaluator itself,
/// which the differential tests pin. Valid when the window contains a
/// single regime change; `None` when the binding never changes.
pub fn crossover_bisect(
    lo: i128,
    hi: i128,
    mut place_at: impl FnMut(i128) -> Result<Ceiling, EvalError>,
) -> Result<Option<Crossover>, EvalError> {
    let from = place_at(lo)?;
    if place_at(hi)? == from {
        return Ok(None);
    }
    let (mut below, mut above) = (lo, hi);
    while below + 1 < above {
        let mid = below + (above - below) / 2;
        if place_at(mid)? == from {
            below = mid;
        } else {
            above = mid;
        }
    }
    Ok(Some(Crossover {
        value: above,
        from,
        to: place_at(above)?,
    }))
}

/// Place a *measured* run against the same ceilings: the simulator's
/// observed traffic per boundary (explicit data bytes at L1, data fills
/// plus dirty data write-backs beyond L1 and L2 — flush the VM first so
/// end-of-run stores are on the books) against the model's FLOPs. Frame
/// (stack) lines are excluded at every boundary, mirroring the static
/// side's frame-free closed forms, so the placement stays
/// register-allocation-invariant.
pub fn dynamic_placement(
    flops: i128,
    stats: &MemStats,
    c: &Ceilings,
    vectorized: bool,
) -> Placement {
    let _a = mira_probe::accum("roofline.dynamic_placement");
    let compute = flops as f64 / c.peak(vectorized) as f64;
    let mem = [
        stats.data_bytes() as f64 / c.bandwidth[0] as f64,
        stats.data_beyond_l1_bytes(c.line_bytes) as f64 / c.bandwidth[1] as f64,
        stats.data_beyond_l2_bytes(c.line_bytes) as f64 / c.bandwidth[2] as f64,
    ];
    Placement::classify(compute, mem)
}

/// The compute and L1 time bounds of one statement (loop-nest body
/// line), from the model's per-line attribution. Deeper ceilings need
/// whole-function footprints and are not attributable per line, so nest
/// bounds stop at the boundaries that are: issue rate and L1 bandwidth.
#[derive(Clone, Debug)]
pub struct NestBound {
    pub line: u32,
    /// Packed-aware FLOPs retired by this line per call.
    pub flops: SymExpr,
    /// Data bytes moved by this line per call (frame traffic excluded).
    pub data_bytes: SymExpr,
    pub vectorized: bool,
}

impl NestBound {
    pub fn compute_cycles_expr(&self, c: &Ceilings) -> SymExpr {
        self.flops.scale(Rat::new(1, c.peak(self.vectorized) as i128))
    }

    pub fn l1_cycles_expr(&self, c: &Ceilings) -> SymExpr {
        self.data_bytes.scale(Rat::new(1, c.bandwidth[0] as i128))
    }

    /// Which of the two per-nest ceilings binds at a concrete size.
    pub fn place(&self, c: &Ceilings, b: &Bindings) -> Result<Ceiling, EvalError> {
        let compute = self.compute_cycles_expr(c).eval(b)?.to_f64();
        let l1 = self.l1_cycles_expr(c).eval(b)?.to_f64();
        Ok(if compute > l1 {
            Ceiling::Compute
        } else {
            Ceiling::Mem(MemLevel::L1)
        })
    }
}

/// Per-line (loop-nest statement) bounds of `func`, from the directly
/// owned model ops — call lines carry their callees' traffic inside the
/// callee's own nest bounds, not here.
pub fn nest_bounds(model: &Model, func: &str) -> Result<Vec<NestBound>, ModelError> {
    let fm = model
        .functions
        .get(func)
        .ok_or_else(|| ModelError::UnknownFunction(func.to_string()))?;
    // the byte side comes from the model's per-line closed forms (the
    // same expressions the emitted Python exposes as `<fn>_line_bytes`)
    let line_bytes = model.line_data_bytes_exprs(func)?;
    let mut by_line: std::collections::BTreeMap<u32, (SymExpr, SymExpr, bool)> =
        std::collections::BTreeMap::new();
    for (line, (load, store)) in line_bytes {
        by_line.insert(line, (SymExpr::zero(), load.add_expr(&store), false));
    }
    for op in &fm.ops {
        match op {
            ModelOp::FlopAcc { line, count } => {
                let e = by_line.entry(*line).or_insert_with(|| {
                    (SymExpr::zero(), SymExpr::zero(), false)
                });
                e.0 = e.0.add_expr(count);
            }
            ModelOp::MemAcc {
                line,
                bytes_per_exec,
                frame: false,
                ..
            } if *bytes_per_exec > 8 => {
                // packed accesses mark a vectorized nest
                if let Some(e) = by_line.get_mut(line) {
                    e.2 = true;
                }
            }
            _ => {}
        }
    }
    Ok(by_line
        .into_iter()
        .filter(|(_, (f, b, _))| !f.is_zero() || !b.is_zero())
        .map(|(line, (flops, data_bytes, vectorized))| NestBound {
            line,
            flops,
            data_bytes,
            vectorized,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_core::{analyze_source, MiraOptions};
    use mira_sym::bindings;

    const TRIAD: &str = "void triad(int n, int reps, double* a, double* b, double* c, double s) {\n\
         for (int r = 0; r < reps; r++) {\n\
           for (int i = 0; i < n; i++) {\n\
             a[i] = b[i] + s * c[i];\n\
           }\n\
         }\n}";

    fn triad_model(vectorized: bool) -> (KernelRoofline, Ceilings) {
        let compiler = if vectorized {
            mira_vcc::Options::vectorized()
        } else {
            mira_vcc::Options::default()
        };
        let analysis = analyze_source(
            TRIAD,
            &MiraOptions {
                compiler,
                ..MiraOptions::default()
            },
        )
        .unwrap();
        let c = Ceilings::from_arch(&analysis.arch);
        (KernelRoofline::analyze(&analysis, "triad").unwrap(), c)
    }

    #[test]
    fn classify_rules() {
        // deepest memory level wins ties among memory …
        let p = Placement::classify(1.0, [5.0, 5.0, 2.0]);
        assert_eq!(p.binding, Ceiling::Mem(MemLevel::L2));
        assert!(p.memory_bound());
        assert_eq!(p.cycles(), 5.0);
        // … compute must strictly exceed every memory bound
        let p = Placement::classify(5.0, [5.0, 1.0, 1.0]);
        assert_eq!(p.binding, Ceiling::Mem(MemLevel::L1));
        let p = Placement::classify(6.0, [5.0, 1.0, 1.0]);
        assert_eq!(p.binding, Ceiling::Compute);
        assert!(!p.memory_bound());
        assert_eq!(p.ceiling_cycles(Ceiling::Mem(MemLevel::Dram)), 1.0);
    }

    #[test]
    fn ceiling_names_roundtrip() {
        for c in [
            Ceiling::Compute,
            Ceiling::Mem(MemLevel::L1),
            Ceiling::Mem(MemLevel::L2),
            Ceiling::Mem(MemLevel::Dram),
        ] {
            assert_eq!(Ceiling::from_name(c.name()), Some(c));
        }
        assert_eq!(Ceiling::from_name("l3"), None);
    }

    #[test]
    fn default_ceilings() {
        let arch = ArchDescription::default();
        let c = Ceilings::from_arch(&arch);
        assert_eq!(c.peak_scalar, 2);
        assert_eq!(c.peak_vector, 4);
        assert_eq!(c.bandwidth, [32, 16, 4]);
        assert_eq!(c.capacity_above, [None, Some(32768), Some(262144)]);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.peak(false), 2);
        assert_eq!(c.peak(true), 4);
    }

    #[test]
    fn triad_closed_forms_and_regimes() {
        let (k, c) = triad_model(false);
        assert!(!k.vectorized, "scalar triad");
        assert!(k.footprint_known);
        // 2 FLOPs and 24 data bytes per element per rep
        let b = bindings(&[("n", 1000), ("reps", 4)]);
        assert_eq!(k.flops.eval_count(&b).unwrap(), 8000);
        assert_eq!(k.data_bytes().eval_count(&b).unwrap(), 96_000);
        // footprint: 3 arrays × 125 lines; only `a` is stored
        assert_eq!(k.footprint_lines.eval_count(&b).unwrap(), 375);
        assert_eq!(k.stored_lines.eval_count(&b).unwrap(), 125);
        // ceilings at the default machine
        let p = k.place(&c, &b).unwrap();
        assert_eq!(p.compute_cycles, 4000.0);
        assert_eq!(p.mem_cycles[0], 3000.0);
        // 24 KB footprint fits L1: beyond-L1 traffic is compulsory only
        assert_eq!(p.mem_cycles[1], (375.0 + 125.0) * 64.0 / 16.0);
        assert_eq!(p.mem_cycles[2], (375.0 + 125.0) * 64.0 / 4.0);
        assert_eq!(p.binding, Ceiling::Mem(MemLevel::Dram), "{p}");
        // large n leaves every cache: streaming regime at every level —
        // loads cross once, stores twice (fill + write-back)
        let b = bindings(&[("n", 1_000_000), ("reps", 4)]);
        let p = k.place(&c, &b).unwrap();
        let sweep = (k.data_load_bytes.eval_count(&b).unwrap()
            + 2 * k.data_store_bytes.eval_count(&b).unwrap()) as f64;
        assert_eq!(p.mem_cycles[1], sweep / 16.0);
        assert_eq!(p.mem_cycles[2], sweep / 4.0);
        assert_eq!(p.binding, Ceiling::Mem(MemLevel::Dram));
    }

    #[test]
    fn unknown_footprint_never_claims_residency() {
        // an unannotated CSR gather: vals/cols/x are unanalyzable, so the
        // footprint is a lower bound — the deeper ceilings must use the
        // streaming model even though the *analyzed* lines would fit L1
        let src = "void matvec(int n, int* row_ptr, int* cols, double* vals, double* x, double* y) {\n\
               for (int i = 0; i < n; i++) {\n\
                 double s = 0.0;\n\
                 for (int k = row_ptr[i]; k < row_ptr[i + 1]; k++) {\n\
                   s += vals[k] * x[cols[k]];\n\
                 }\n\
                 y[i] = s;\n\
               } }";
        let analysis = analyze_source(src, &MiraOptions::default()).unwrap();
        let c = Ceilings::from_arch(&analysis.arch);
        let k = KernelRoofline::analyze(&analysis, "matvec").unwrap();
        assert!(!k.footprint_known);
        let b = bindings(&[("n", 64), ("iters_l4", 7)]);
        let p = k.place(&c, &b).unwrap();
        assert_eq!(
            p.mem_cycles[2],
            k.streaming_cycles_expr(&c, MemLevel::Dram).eval(&b).unwrap().to_f64(),
            "unknown footprint ⇒ sweep, not compulsory-only: {p}"
        );
    }

    #[test]
    fn vectorized_triad_uses_vector_peak() {
        let (k, c) = triad_model(true);
        assert!(k.vectorized, "packed arithmetic detected");
        let b = bindings(&[("n", 1024), ("reps", 1)]);
        // same FLOPs, half the compute cycles
        let (ks, _) = triad_model(false);
        assert_eq!(
            k.flops.eval_count(&b).unwrap(),
            ks.flops.eval_count(&b).unwrap()
        );
        let pv = k.place(&c, &b).unwrap();
        let p = ks.place(&c, &b).unwrap();
        assert!((pv.compute_cycles - p.compute_cycles / 2.0).abs() < 1e-9);
    }

    #[test]
    fn triad_crossover_matches_sweep() {
        // at small n·reps the cold DRAM footprint dominates; at high reps
        // the kernel becomes compute-bound while L1-resident. The solver
        // and the brute-force sweep must find the same switch point.
        let (k, c) = triad_model(false);
        let base = bindings(&[("n", 1024)]);
        let solved = k.crossover(&c, "reps", &base, 1, 200).unwrap();
        let swept = k.crossover_sweep(&c, "reps", &base, 1, 200).unwrap();
        assert_eq!(solved, swept);
        let x = solved.expect("triad changes regime as reps grow");
        assert_eq!(x.from, Ceiling::Mem(MemLevel::Dram));
        assert!(x.value > 1);
    }

    #[test]
    fn crossover_none_when_regime_constant() {
        let (k, c) = triad_model(false);
        // huge n: DRAM-bound at every rep count in the window
        let base = bindings(&[("n", 10_000_000)]);
        assert_eq!(k.crossover(&c, "reps", &base, 1, 50).unwrap(), None);
        assert_eq!(k.crossover_sweep(&c, "reps", &base, 1, 50).unwrap(), None);
    }

    #[test]
    fn working_set_refinement_keeps_blocked_dgemm_compulsory() {
        // n=40: the 38400-byte footprint exceeds the 32 KiB L1, so the
        // old fits-or-streams model predicted a full sweep at the L2
        // boundary; the per-i working set (two rows + all of b) fits, so
        // the working-set model keeps the compulsory-only count — the
        // ROADMAP's reuse-distance case
        let src = "void mm(int n, int reps, double* a, double* b, double* c) {\n\
             for (int r = 0; r < reps; r++) {\n\
               for (int i = 0; i < n; i++) {\n\
                 for (int k = 0; k < n; k++) {\n\
                   for (int j = 0; j < n; j++) {\n\
                     c[i * n + j] += a[i * n + k] * b[k * n + j];\n\
                   } } } } }";
        let analysis = analyze_source(src, &MiraOptions::default()).unwrap();
        let c = Ceilings::from_arch(&analysis.arch);
        let k = KernelRoofline::analyze(&analysis, "mm").unwrap();
        assert!(k.nest_model.is_some(), "own affine nests only");
        let b = bindings(&[("n", 40), ("reps", 1)]);
        let footprint = k.footprint_lines.eval_count(&b).unwrap();
        assert_eq!(footprint, 600);
        assert!(footprint * 64 > 32768, "exceeds L1 but …");
        let p = k.place(&c, &b).unwrap();
        // … the L2 boundary still carries compulsory lines only:
        // 600 fills + 200 write-backs of c
        assert_eq!(p.mem_cycles[1], 800.0 * 64.0 / 16.0, "{p}");
        // footprint fits L2, so the DRAM boundary is resident
        assert_eq!(p.mem_cycles[2], 800.0 * 64.0 / 4.0);
        // the sweep model would have said 2.5·n³ cycles and bound the
        // kernel at L2; the refinement leaves it on the L1 knee
        let sweep = k.streaming_cycles_expr(&c, MemLevel::L2).eval(&b).unwrap().to_f64();
        assert!(sweep > p.mem_cycles[0], "old model misclassified");
        assert_eq!(p.binding, Ceiling::Mem(MemLevel::L1), "{p}");
    }

    #[test]
    fn nest_bounds_attribute_lines() {
        let analysis = analyze_source(TRIAD, &MiraOptions::default()).unwrap();
        let c = Ceilings::from_arch(&analysis.arch);
        let nests = nest_bounds(&analysis.model, "triad").unwrap();
        // the kernel line dominates: 24 data bytes, 2 flops per n·reps
        let b = bindings(&[("n", 100), ("reps", 1)]);
        let kernel = nests
            .iter()
            .max_by_key(|nb| nb.data_bytes.eval_count(&b).unwrap())
            .unwrap();
        assert_eq!(kernel.line, 4);
        assert_eq!(kernel.flops.eval_count(&b).unwrap(), 200);
        assert_eq!(kernel.data_bytes.eval_count(&b).unwrap(), 2400);
        // 75 cycles of L1 traffic vs 100 cycles of FP issue
        assert_eq!(kernel.place(&c, &b).unwrap(), Ceiling::Compute);
        assert!(!kernel.vectorized);
        assert!(nest_bounds(&analysis.model, "nope").is_err());
    }

    #[test]
    fn dynamic_placement_uses_fills_and_writebacks() {
        let c = Ceilings::from_arch(&ArchDescription::default());
        let stats = MemStats {
            data_load_bytes: 64_000,
            data_store_bytes: 32_000,
            load_bytes: 64_000,
            store_bytes: 32_000,
            ..MemStats::default()
        };
        // no misses: deeper levels idle, L1 carries all 96 KB
        let p = dynamic_placement(2_000, &stats, &c, false);
        assert_eq!(p.binding, Ceiling::Mem(MemLevel::L1));
        assert_eq!(p.mem_cycles[0], 3000.0);
        assert_eq!(p.mem_cycles[2], 0.0);
        // register-only compute: compute-bound
        let p = dynamic_placement(2_000, &MemStats::default(), &c, false);
        assert_eq!(p.binding, Ceiling::Compute);
        assert_eq!(p.compute_cycles, 1000.0);
    }
}
