//! Analysis budgets: thread-local fuel and recursion-depth guards for
//! symbolic computation.
//!
//! Symbolic analysis over [`crate::SymExpr`] is worst-case explosive:
//! polynomial products multiply term counts, substitution recurses through
//! nested floor-div/clamp atoms, and adversarial inputs (deep loop nests,
//! huge constants) can make "static" analysis hang, blow the host stack,
//! or overflow `i128` coefficient arithmetic. This module bounds that work
//! with a *budget scope*:
//!
//! ```
//! use mira_sym::{budget, SymExpr};
//!
//! let n = SymExpr::param("n");
//! let r = budget::with_budget(budget::DEFAULT_FUEL, || n.clone() * n);
//! assert!(r.is_ok());
//! ```
//!
//! Inside [`with_budget`], every non-trivial `SymExpr` operation charges
//! fuel proportional to the work it does, and every recursive walk holds a
//! depth guard. When fuel runs out or the depth cap is hit, the budget
//! *trips*: subsequent operations return cheap placeholder values (zero)
//! instead of working, recursion unwinds immediately, and `with_budget`
//! discards the (now meaningless) result and returns the typed
//! [`BudgetError`]. Coefficient overflow inside a scope trips the budget
//! the same way instead of panicking.
//!
//! Outside any scope, behavior is exactly as before this module existed:
//! unlimited work, and coefficient overflow panics. Analysis entry points
//! that face untrusted input (`mira-mem` model derivation, `mira-roofline`
//! placement, `mira-core` metric generation) wrap themselves in a scope
//! and degrade to their conservative fallbacks on a trip — the callers
//! never observe a garbage value, only a typed refusal.
//!
//! Scopes nest: an inner scope gets its own fuel allowance, but the fuel
//! it consumes is also deducted from the enclosing scope on exit, so an
//! outer budget stays a global bound.

use std::cell::Cell;
use std::fmt;

/// Why a budget scope refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetError {
    /// The operation-count budget was exhausted before analysis finished.
    FuelExhausted,
    /// Symbolic expression nesting exceeded [`MAX_DEPTH`] (guards the host
    /// stack against deeply nested floor-div/clamp atoms).
    DepthExceeded,
    /// Coefficient arithmetic exceeded `i128` (a panic outside a scope).
    Overflow,
    /// A divisor that must be positive was not (e.g. a zero-stride loop).
    BadDivisor,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::FuelExhausted => write!(f, "symbolic analysis budget exhausted"),
            BudgetError::DepthExceeded => write!(f, "symbolic expression nesting too deep"),
            BudgetError::Overflow => write!(f, "symbolic coefficient overflow"),
            BudgetError::BadDivisor => write!(f, "non-positive divisor in symbolic floor division"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Default fuel for one analysis scope. Generous: real workloads consume
/// well under 1% of this; adversarial blowups hit it in milliseconds.
pub const DEFAULT_FUEL: u64 = 4_000_000;

/// Maximum recursion depth through composite atoms before a scope trips.
pub const MAX_DEPTH: u32 = 128;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static FUEL: Cell<u64> = const { Cell::new(u64::MAX) };
    static TRIPPED: Cell<Option<BudgetError>> = const { Cell::new(None) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Run `f` under a fuel budget. Returns `Err` if the budget tripped
/// (fuel, depth, overflow, or bad divisor), in which case the value
/// computed by `f` is discarded — placeholder values produced after a trip
/// never escape.
pub fn with_budget<T>(fuel: u64, f: impl FnOnce() -> T) -> Result<T, BudgetError> {
    let mut sp = mira_probe::span("sym.budget", "sym");
    let prev_active = ACTIVE.with(|a| a.replace(true));
    let prev_fuel = FUEL.with(|c| c.replace(fuel));
    let prev_tripped = TRIPPED.with(|t| t.replace(None));
    let prev_depth = DEPTH.with(|d| d.replace(0));

    let value = f();

    let tripped = TRIPPED.with(|t| t.get());
    let spent = fuel.saturating_sub(FUEL.with(|c| c.get()));
    sp.arg("fuel", fuel);
    sp.arg("fuel_spent", spent);
    if let Some(e) = tripped {
        sp.arg("tripped", e);
    }
    ACTIVE.with(|a| a.set(prev_active));
    // an enclosing scope pays for the work its inner scopes did
    FUEL.with(|c| c.set(prev_fuel.saturating_sub(spent)));
    TRIPPED.with(|t| t.set(prev_tripped));
    DEPTH.with(|d| d.set(prev_depth));

    match tripped {
        Some(e) => Err(e),
        None => Ok(value),
    }
}

/// [`with_budget`] with [`DEFAULT_FUEL`].
pub fn with_default_budget<T>(f: impl FnOnce() -> T) -> Result<T, BudgetError> {
    with_budget(DEFAULT_FUEL, f)
}

/// Is a budget scope currently installed on this thread?
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Has the current scope tripped?
pub fn tripped() -> Option<BudgetError> {
    if active() {
        TRIPPED.with(|t| t.get())
    } else {
        None
    }
}

/// Fuel left in the current scope, or `None` outside any scope. Probe
/// spans in downstream crates use this to record per-operation fuel
/// deltas without reaching into the thread-local state.
pub fn fuel_remaining() -> Option<u64> {
    if active() {
        Some(FUEL.with(|c| c.get()))
    } else {
        None
    }
}

/// Record a trip (first cause wins). No-op outside a scope.
pub(crate) fn trip(e: BudgetError) {
    if active() {
        TRIPPED.with(|t| {
            if t.get().is_none() {
                t.set(Some(e));
                mira_probe::instant_kv("sym.budget.trip", "sym", "cause", e);
                mira_probe::add("sym.budget.trips", 1);
            }
        });
    }
}

/// Charge `n` units of work. Returns `false` when the scope has tripped
/// (callers should early-out with a placeholder value). Always `true`
/// outside a scope.
#[inline]
pub(crate) fn charge(n: u64) -> bool {
    if !active() {
        return true;
    }
    if TRIPPED.with(|t| t.get()).is_some() {
        return false;
    }
    let ok = FUEL.with(|c| {
        let left = c.get().saturating_sub(n);
        c.set(left);
        left > 0
    });
    if !ok {
        trip(BudgetError::FuelExhausted);
    }
    ok
}

/// RAII guard for one level of recursion through composite atoms.
pub(crate) struct DepthGuard;

impl Drop for DepthGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Enter one recursion level; `None` trips the scope (too deep) and tells
/// the caller to unwind with a placeholder. Outside a scope the guard
/// always succeeds (depth is still tracked, but unlimited).
#[inline]
pub(crate) fn descend() -> Option<DepthGuard> {
    let depth = DEPTH.with(|d| {
        let v = d.get() + 1;
        d.set(v);
        v
    });
    if active() && depth > MAX_DEPTH {
        trip(BudgetError::DepthExceeded);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        return None;
    }
    Some(DepthGuard)
}

/// One recursion level for a *flat* (non-recursive) evaluator. A
/// compiled evaluator (`mira-serve`'s `EvalProgram`) executes the same
/// composite atoms as [`crate::SymExpr::eval`] but as a linear op
/// stream, so it cannot hold the RAII guard of the tree walk across its
/// dispatch loop. `depth_enter`/[`depth_exit`] mirror the internal
/// `descend` guard exactly: entering beyond [`MAX_DEPTH`] inside an
/// active scope trips it and refuses (the caller must unwind any levels
/// it already entered via [`depth_exit`]). Outside a scope the depth is
/// still tracked but unlimited, exactly like the tree walk.
pub fn depth_enter() -> Result<(), BudgetError> {
    let depth = DEPTH.with(|d| {
        let v = d.get() + 1;
        d.set(v);
        v
    });
    if active() && depth > MAX_DEPTH {
        trip(BudgetError::DepthExceeded);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        return Err(BudgetError::DepthExceeded);
    }
    Ok(())
}

/// Leave one [`depth_enter`] level.
pub fn depth_exit() {
    DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

/// A memoized subexpression result is standing in for re-walking a
/// subtree whose composite-atom nesting height is `h`: the re-walk
/// would have descended `h` levels below the current depth, so the
/// stand-in must trip the scope exactly when that walk would have.
/// Evaluation is deterministic and side-effect-free, so depth is the
/// only ambient state that can make a re-walk of a previously
/// successful subtree fail — this probe is the whole parity obligation
/// of a compile-time CSE cache.
pub fn depth_probe(h: u32) -> Result<(), BudgetError> {
    if active() && DEPTH.with(|d| d.get()).saturating_add(h) > MAX_DEPTH {
        trip(BudgetError::DepthExceeded);
        return Err(BudgetError::DepthExceeded);
    }
    Ok(())
}

/// Report coefficient overflow: trips the scope when one is active,
/// panics with `msg` otherwise (the pre-budget behavior).
#[inline]
pub(crate) fn overflow(msg: &str) {
    if active() {
        trip(BudgetError::Overflow);
    } else {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rat, SymExpr};

    #[test]
    fn scope_without_trip_returns_value() {
        let r = with_default_budget(|| SymExpr::param("n") + SymExpr::constant(1));
        assert!(r.is_ok());
        assert_eq!(r.unwrap().degree_in("n"), 1);
    }

    #[test]
    fn fuel_exhaustion_trips() {
        let r = with_budget(16, || {
            let mut e = SymExpr::param("n") + SymExpr::constant(1);
            for _ in 0..64 {
                e = e.clone() * e;
            }
            e
        });
        assert_eq!(r, Err(BudgetError::FuelExhausted));
    }

    #[test]
    fn deep_substitution_trips_depth() {
        // Build a floor-div tower deeper than MAX_DEPTH *outside* any
        // scope (construction is cheap), then substitute inside one.
        let mut e = SymExpr::param("n");
        for _ in 0..(MAX_DEPTH + 32) {
            e = (e + SymExpr::constant(1)).floor_div(2);
        }
        let r = with_default_budget(|| e.substitute("n", &SymExpr::param("m")));
        assert!(
            matches!(r, Err(BudgetError::DepthExceeded | BudgetError::FuelExhausted)),
            "{r:?}"
        );
    }

    #[test]
    fn overflow_trips_instead_of_panicking() {
        let huge = SymExpr::from_rat(Rat::int(i128::MAX / 2));
        let r = with_default_budget(|| huge.clone() * huge.clone() * huge.clone());
        assert_eq!(r, Err(BudgetError::Overflow));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_outside_scope_still_panics() {
        let huge = SymExpr::from_rat(Rat::int(i128::MAX / 2));
        let _ = huge.clone() * huge.clone() * huge;
    }

    #[test]
    fn nested_scopes_restore_and_deduct() {
        let r = with_budget(1_000, || {
            let inner = with_budget(16, || {
                let mut e = SymExpr::param("n") + SymExpr::constant(1);
                for _ in 0..64 {
                    e = e.clone() * e;
                }
            });
            assert_eq!(inner, Err(BudgetError::FuelExhausted));
            // outer scope is intact (not tripped by the inner trip)
            SymExpr::param("n") * SymExpr::param("m")
        });
        assert!(r.is_ok());
        assert!(!active());
    }

    #[test]
    fn flat_depth_hooks_match_descend() {
        // outside a scope: tracked but unlimited, like the tree walk
        for _ in 0..(MAX_DEPTH + 10) {
            assert!(depth_enter().is_ok());
        }
        assert!(depth_probe(1_000).is_ok());
        for _ in 0..(MAX_DEPTH + 10) {
            depth_exit();
        }
        // inside: entering past MAX_DEPTH trips; a probe trips exactly
        // when the simulated re-walk would cross the cap
        let r = with_default_budget(|| {
            for _ in 0..MAX_DEPTH {
                depth_enter().expect("within the cap");
            }
            assert!(depth_probe(0).is_ok());
            assert_eq!(depth_probe(1), Err(BudgetError::DepthExceeded));
            for _ in 0..MAX_DEPTH {
                depth_exit();
            }
        });
        assert_eq!(r, Err(BudgetError::DepthExceeded));
        assert!(!active());
    }

    #[test]
    fn zero_stride_floor_div_trips_in_scope() {
        let n = SymExpr::param("n");
        let r = with_default_budget(|| n.floor_div(0));
        assert_eq!(r, Err(BudgetError::BadDivisor));
    }
}
