//! The symbolic expression type.
//!
//! A [`SymExpr`] is a multivariate polynomial with [`Rat`] coefficients over
//! [`Atom`]s. Atoms are either named parameters, floor divisions (which
//! arise from strided loops and lattice/modulo constraints), or
//! `max(0, ·)` clamps (which arise from iteration domains that may be
//! empty for some parameter values). Expressions are kept in a canonical
//! sorted form so that structural equality is semantic equality for the
//! polynomial part.

use crate::budget;
use crate::rat::Rat;
use crate::Bindings;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::rc::Rc;

/// An indivisible symbolic quantity.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// A named model parameter (problem size, annotation variable, ...).
    Param(String),
    /// `floor(expr / d)` with `d > 0`. The inner expression is
    /// reference-counted: atoms are cloned wholesale by `substitute`,
    /// `simplify` and polynomial arithmetic, and an `Rc` bump is O(1)
    /// where a `Box` clone deep-copied the whole tree.
    FloorDiv(Rc<SymExpr>, i64),
    /// `max(0, expr)` — used when an iteration domain may be empty.
    /// Reference-counted for the same reason as [`Atom::FloorDiv`].
    Clamp(Rc<SymExpr>),
}

impl Atom {
    fn eval(&self, b: &Bindings) -> Result<i128, EvalError> {
        match self {
            Atom::Param(name) => b
                .get(name)
                .copied()
                .ok_or_else(|| EvalError::MissingParam(name.clone())),
            Atom::FloorDiv(e, d) => {
                let _g = budget::descend().ok_or(EvalError::Budget(
                    budget::BudgetError::DepthExceeded,
                ))?;
                let v = e.eval(b)?;
                let den = Rat::int(*d as i128);
                v.checked_div(den)
                    .ok_or(EvalError::Overflow)
                    .map(|r| r.floor())
            }
            Atom::Clamp(e) => {
                let _g = budget::descend().ok_or(EvalError::Budget(
                    budget::BudgetError::DepthExceeded,
                ))?;
                let v = e.eval(b)?;
                if v < Rat::ZERO {
                    Ok(0)
                } else {
                    // clamp values are counts; they are integral in practice
                    Ok(v.floor())
                }
            }
        }
    }
}

/// One term of a polynomial: `coeff * Π atom_i ^ pow_i`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Term {
    pub coeff: Rat,
    /// Sorted by atom; powers are ≥ 1.
    pub monomial: Vec<(Atom, u32)>,
}

/// Errors produced when evaluating a symbolic expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A parameter used by the expression was not bound.
    MissingParam(String),
    /// Intermediate arithmetic exceeded `i128`, or an exact count fell
    /// outside the range requested by the caller (see
    /// [`SymExpr::eval_count_i64`]).
    Overflow,
    /// Evaluation ran inside a [`budget`] scope that tripped (expression
    /// too deep for the recursion guard).
    Budget(budget::BudgetError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingParam(p) => write!(f, "unbound model parameter `{p}`"),
            EvalError::Overflow => write!(f, "arithmetic overflow during model evaluation"),
            EvalError::Budget(e) => write!(f, "model evaluation refused: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A multivariate polynomial over [`Atom`]s with rational coefficients.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SymExpr {
    /// Canonical: sorted by monomial, no zero coefficients, no duplicate
    /// monomials.
    terms: Vec<Term>,
}

impl SymExpr {
    pub fn zero() -> SymExpr {
        SymExpr { terms: Vec::new() }
    }

    pub fn constant(v: i128) -> SymExpr {
        SymExpr::from_rat(Rat::int(v))
    }

    pub fn from_rat(r: Rat) -> SymExpr {
        if r.is_zero() {
            SymExpr::zero()
        } else {
            SymExpr {
                terms: vec![Term {
                    coeff: r,
                    monomial: Vec::new(),
                }],
            }
        }
    }

    pub fn param(name: &str) -> SymExpr {
        SymExpr::from_atom(Atom::Param(name.to_string()))
    }

    pub fn from_atom(a: Atom) -> SymExpr {
        SymExpr {
            terms: vec![Term {
                coeff: Rat::ONE,
                monomial: vec![(a, 1)],
            }],
        }
    }

    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the expression is a constant, return it.
    pub fn as_constant(&self) -> Option<Rat> {
        match self.terms.len() {
            0 => Some(Rat::ZERO),
            1 if self.terms[0].monomial.is_empty() => Some(self.terms[0].coeff),
            _ => None,
        }
    }

    /// If the expression is a constant integer, return it.
    pub fn as_int(&self) -> Option<i128> {
        self.as_constant().and_then(|r| r.as_integer())
    }

    fn from_map(map: BTreeMap<Vec<(Atom, u32)>, Rat>) -> SymExpr {
        let terms = map
            .into_iter()
            .filter(|(_, c)| !c.is_zero())
            .map(|(monomial, coeff)| Term { coeff, monomial })
            .collect();
        SymExpr { terms }
    }

    fn to_map(&self) -> BTreeMap<Vec<(Atom, u32)>, Rat> {
        self.terms
            .iter()
            .map(|t| (t.monomial.clone(), t.coeff))
            .collect()
    }

    pub fn add_expr(&self, o: &SymExpr) -> SymExpr {
        if !budget::charge(self.terms.len() as u64 + o.terms.len() as u64 + 1) {
            return SymExpr::zero();
        }
        let mut map = self.to_map();
        for t in &o.terms {
            let e = map.entry(t.monomial.clone()).or_insert(Rat::ZERO);
            match e.checked_add(t.coeff) {
                Some(v) => *e = v,
                None => {
                    budget::overflow("SymExpr coefficient overflow in add");
                    return SymExpr::zero();
                }
            }
        }
        SymExpr::from_map(map)
    }

    pub fn neg_expr(&self) -> SymExpr {
        SymExpr {
            terms: self
                .terms
                .iter()
                .map(|t| Term {
                    coeff: t.coeff.neg(),
                    monomial: t.monomial.clone(),
                })
                .collect(),
        }
    }

    pub fn sub_expr(&self, o: &SymExpr) -> SymExpr {
        self.add_expr(&o.neg_expr())
    }

    pub fn scale(&self, r: Rat) -> SymExpr {
        if r.is_zero() {
            return SymExpr::zero();
        }
        if !budget::charge(self.terms.len() as u64 + 1) {
            return SymExpr::zero();
        }
        let mut terms = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            match t.coeff.checked_mul(r) {
                Some(coeff) => terms.push(Term {
                    coeff,
                    monomial: t.monomial.clone(),
                }),
                None => {
                    budget::overflow("SymExpr coefficient overflow in scale");
                    return SymExpr::zero();
                }
            }
        }
        SymExpr { terms }
    }

    pub fn mul_expr(&self, o: &SymExpr) -> SymExpr {
        let work = (self.terms.len() as u64).saturating_mul(o.terms.len() as u64);
        if !budget::charge(work + 1) {
            return SymExpr::zero();
        }
        let mut map: BTreeMap<Vec<(Atom, u32)>, Rat> = BTreeMap::new();
        for a in &self.terms {
            for b in &o.terms {
                let Some(coeff) = a.coeff.checked_mul(b.coeff) else {
                    budget::overflow("SymExpr coefficient overflow in mul");
                    return SymExpr::zero();
                };
                let mono = merge_monomials(&a.monomial, &b.monomial);
                let e = map.entry(mono).or_insert(Rat::ZERO);
                match e.checked_add(coeff) {
                    Some(v) => *e = v,
                    None => {
                        budget::overflow("SymExpr coefficient overflow in mul-add");
                        return SymExpr::zero();
                    }
                }
            }
        }
        SymExpr::from_map(map)
    }

    pub fn pow(&self, p: u32) -> SymExpr {
        let mut acc = SymExpr::constant(1);
        for _ in 0..p {
            acc = acc.mul_expr(self);
        }
        acc
    }

    /// `floor(self / d)` with `d > 0`, simplified when exact.
    ///
    /// If the expression can be written as `d·q + r` where `q` has
    /// integer coefficients and `r` is a constant with `0 ≤ r < d`, the
    /// result is exactly `q` (plus `floor(r/d) = 0`). Otherwise the
    /// division is kept as an opaque [`Atom::FloorDiv`].
    pub fn floor_div(&self, d: i64) -> SymExpr {
        if d <= 0 {
            // Inside a budget scope (untrusted input: e.g. a zero-stride
            // loop reached symbolic trip counting) this is a typed
            // refusal; outside one it is a caller bug, as before.
            if budget::active() {
                budget::trip(budget::BudgetError::BadDivisor);
                return SymExpr::zero();
            }
            panic!("floor_div by non-positive divisor");
        }
        if d == 1 {
            return self.clone();
        }
        if let Some(c) = self.as_constant() {
            if let Some(i) = c.as_integer() {
                return SymExpr::constant(i.div_euclid(d as i128));
            }
        }
        // Try the exact split.
        let dd = Rat::int(d as i128);
        let mut quotient_terms: Vec<Term> = Vec::new();
        let mut remainder = Rat::ZERO;
        let mut exact = true;
        for t in &self.terms {
            if t.monomial.is_empty() {
                remainder = t.coeff;
                continue;
            }
            let Some(q) = t.coeff.checked_div(dd) else {
                budget::overflow("floor_div overflow");
                return SymExpr::zero();
            };
            if q.is_integer() {
                quotient_terms.push(Term {
                    coeff: q,
                    monomial: t.monomial.clone(),
                });
            } else {
                exact = false;
                break;
            }
        }
        if exact {
            if let Some(r) = remainder.as_integer() {
                // split the constant remainder c = d*q + r' with 0 ≤ r' < d;
                // then floor((d*Q + c)/d) = Q + q exactly.
                let q = r.div_euclid(d as i128);
                if q != 0 {
                    quotient_terms.push(Term {
                        coeff: Rat::int(q),
                        monomial: Vec::new(),
                    });
                }
                quotient_terms.sort_by(|a, b| a.monomial.cmp(&b.monomial));
                return SymExpr {
                    terms: quotient_terms,
                };
            }
        }
        SymExpr::from_atom(Atom::FloorDiv(Rc::new(self.clone()), d))
    }

    /// `max(0, self)`, simplified for constants.
    pub fn clamp0(&self) -> SymExpr {
        if let Some(c) = self.as_constant() {
            return if c < Rat::ZERO {
                SymExpr::zero()
            } else {
                SymExpr::from_rat(c)
            };
        }
        SymExpr::from_atom(Atom::Clamp(Rc::new(self.clone())))
    }

    /// Replace every occurrence of parameter `name` (including inside
    /// floor-div and clamp atoms) with `repl`.
    pub fn substitute(&self, name: &str, repl: &SymExpr) -> SymExpr {
        // recursive calls go through `substitute_rec` directly, so the
        // aggregated hot-path row counts top-level substitutions once
        let _a = mira_probe::accum("sym.substitute");
        self.substitute_rec(name, repl)
    }

    fn substitute_rec(&self, name: &str, repl: &SymExpr) -> SymExpr {
        let Some(_g) = budget::descend() else {
            return SymExpr::zero();
        };
        if !budget::charge(self.terms.len() as u64 + 1) {
            return SymExpr::zero();
        }
        let mut out = SymExpr::zero();
        for t in &self.terms {
            let mut factor = SymExpr::from_rat(t.coeff);
            for (atom, p) in &t.monomial {
                let atom_expr = match atom {
                    Atom::Param(n) if n == name => repl.clone(),
                    Atom::Param(_) => SymExpr::from_atom(atom.clone()),
                    Atom::FloorDiv(inner, d) => inner.substitute_rec(name, repl).floor_div(*d),
                    Atom::Clamp(inner) => inner.substitute_rec(name, repl).clamp0(),
                };
                factor = factor.mul_expr(&atom_expr.pow(*p));
            }
            out = out.add_expr(&factor);
        }
        out
    }

    /// All parameter names referenced anywhere in the expression.
    pub fn params(&self) -> Vec<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_params(&mut out);
        out.into_iter().collect()
    }

    fn collect_params(&self, out: &mut std::collections::BTreeSet<String>) {
        let Some(_g) = budget::descend() else {
            return;
        };
        for t in &self.terms {
            for (atom, _) in &t.monomial {
                match atom {
                    Atom::Param(n) => {
                        out.insert(n.clone());
                    }
                    Atom::FloorDiv(e, _) | Atom::Clamp(e) => e.collect_params(out),
                }
            }
        }
    }

    /// Does parameter `name` occur inside a floor-div or clamp atom?
    /// (Such occurrences block closed-form summation over `name`.)
    pub fn param_in_composite_atom(&self, name: &str) -> bool {
        for t in &self.terms {
            for (atom, _) in &t.monomial {
                if let Atom::FloorDiv(e, _) | Atom::Clamp(e) = atom {
                    if e.params().iter().any(|p| p == name) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Degree of the expression in parameter `name`, counting only direct
    /// `Param` occurrences.
    pub fn degree_in(&self, name: &str) -> u32 {
        self.terms
            .iter()
            .map(|t| {
                t.monomial
                    .iter()
                    .filter(|(a, _)| matches!(a, Atom::Param(n) if n == name))
                    .map(|(_, p)| *p)
                    .sum::<u32>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Write `self = Σ_k coeffs[k] · name^k` and return the coefficient
    /// polynomials. Requires `name` not to occur inside composite atoms.
    pub fn coefficients_of(&self, name: &str) -> Vec<SymExpr> {
        let deg = self.degree_in(name) as usize;
        let mut coeffs = vec![SymExpr::zero(); deg + 1];
        for t in &self.terms {
            let mut k = 0usize;
            let mut rest = Vec::new();
            for (atom, p) in &t.monomial {
                if matches!(atom, Atom::Param(n) if n == name) {
                    k += *p as usize;
                } else {
                    rest.push((atom.clone(), *p));
                }
            }
            let part = SymExpr {
                terms: vec![Term {
                    coeff: t.coeff,
                    monomial: rest,
                }],
            };
            coeffs[k] = coeffs[k].add_expr(&part);
        }
        coeffs
    }

    /// Evaluate to an exact rational under the given bindings.
    pub fn eval(&self, b: &Bindings) -> Result<Rat, EvalError> {
        let mut acc = Rat::ZERO;
        for t in &self.terms {
            let mut v = t.coeff;
            for (atom, p) in &t.monomial {
                let a = atom.eval(b)?;
                for _ in 0..*p {
                    v = v
                        .checked_mul(Rat::int(a))
                        .ok_or(EvalError::Overflow)?;
                }
            }
            acc = acc.checked_add(v).ok_or(EvalError::Overflow)?;
        }
        Ok(acc)
    }

    /// Evaluate to an integer count. Count expressions built from integer
    /// polyhedra are always integral; annotation fractions (e.g. a branch
    /// taken "30% of the time") can produce non-integers, which are rounded
    /// to the nearest integer.
    pub fn eval_count(&self, b: &Bindings) -> Result<i128, EvalError> {
        // round half away from zero (shared with every other counter)
        self.eval(b)?.round_count().ok_or(EvalError::Overflow)
    }

    /// Evaluate to an `i64` count, refusing with [`EvalError::Overflow`]
    /// when the exact value falls outside `i64` — never wrapping or
    /// saturating. This is the checked arithmetic the emitted Python
    /// mirrors with its `_chk_i64` helper, so huge parameter values refuse
    /// identically on both sides.
    pub fn eval_count_i64(&self, b: &Bindings) -> Result<i64, EvalError> {
        let v = self.eval_count(b)?;
        i64::try_from(v).map_err(|_| EvalError::Overflow)
    }
}

fn merge_monomials(a: &[(Atom, u32)], b: &[(Atom, u32)]) -> Vec<(Atom, u32)> {
    let mut map: BTreeMap<Atom, u32> = BTreeMap::new();
    for (atom, p) in a.iter().chain(b.iter()) {
        *map.entry(atom.clone()).or_insert(0) += p;
    }
    map.into_iter().collect()
}

impl Add for SymExpr {
    type Output = SymExpr;
    fn add(self, o: SymExpr) -> SymExpr {
        self.add_expr(&o)
    }
}

impl Sub for SymExpr {
    type Output = SymExpr;
    fn sub(self, o: SymExpr) -> SymExpr {
        self.sub_expr(&o)
    }
}

impl Mul for SymExpr {
    type Output = SymExpr;
    fn mul(self, o: SymExpr) -> SymExpr {
        self.mul_expr(&o)
    }
}

impl Neg for SymExpr {
    type Output = SymExpr;
    fn neg(self) -> SymExpr {
        self.neg_expr()
    }
}

impl From<i64> for SymExpr {
    fn from(v: i64) -> SymExpr {
        SymExpr::constant(v as i128)
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Display highest-degree terms first for readability.
        let mut terms: Vec<&Term> = self.terms.iter().collect();
        terms.sort_by_key(|t| std::cmp::Reverse(t.monomial.iter().map(|(_, p)| *p).sum::<u32>()));
        for (i, t) in terms.iter().enumerate() {
            let neg = t.coeff < Rat::ZERO;
            if i == 0 {
                if neg {
                    write!(f, "-")?;
                }
            } else if neg {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let c = t.coeff.abs();
            if t.monomial.is_empty() {
                write!(f, "{c}")?;
            } else {
                let mut first = true;
                if !c.is_one() {
                    write!(f, "{c}")?;
                    first = false;
                }
                for (atom, p) in &t.monomial {
                    if !first {
                        write!(f, "*")?;
                    }
                    first = false;
                    match atom {
                        Atom::Param(n) => write!(f, "{n}")?,
                        Atom::FloorDiv(e, d) => write!(f, "floor(({e})/{d})")?,
                        Atom::Clamp(e) => write!(f, "max(0, {e})")?,
                    }
                    if *p > 1 {
                        write!(f, "^{p}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings;

    fn n() -> SymExpr {
        SymExpr::param("n")
    }

    #[test]
    fn constants_fold() {
        let e = SymExpr::constant(3) + SymExpr::constant(4);
        assert_eq!(e.as_int(), Some(7));
        assert!((SymExpr::constant(2) - SymExpr::constant(2)).is_zero());
    }

    #[test]
    fn polynomial_arithmetic() {
        // (n + 1)^2 = n^2 + 2n + 1
        let e = (n() + SymExpr::constant(1)).pow(2);
        let b = bindings(&[("n", 9)]);
        assert_eq!(e.eval_count(&b).unwrap(), 100);
        assert_eq!(e.degree_in("n"), 2);
    }

    #[test]
    fn mul_merges_like_terms() {
        // (n + 1)(n - 1) = n^2 - 1
        let e = (n() + SymExpr::constant(1)) * (n() - SymExpr::constant(1));
        let expected = n().pow(2) - SymExpr::constant(1);
        assert_eq!(e, expected);
    }

    #[test]
    fn substitute_param() {
        // n^2 with n := m + 2 → m^2 + 4m + 4
        let e = n().pow(2).substitute("n", &(SymExpr::param("m") + SymExpr::constant(2)));
        assert_eq!(e.eval_count(&bindings(&[("m", 3)])).unwrap(), 25);
        assert!(e.params() == vec!["m".to_string()]);
    }

    #[test]
    fn floor_div_simplifies_exact() {
        // floor((2n + 1)/2) would be kept; floor((2n)/2) = n; floor((4n+2)/2) = 2n+1
        let e = n().scale(Rat::int(2)).floor_div(2);
        assert_eq!(e, n());
        let e2 = (n().scale(Rat::int(4)) + SymExpr::constant(2)).floor_div(2);
        assert_eq!(e2, n().scale(Rat::int(2)) + SymExpr::constant(1));
        let e3 = (n().scale(Rat::int(2)) + SymExpr::constant(1)).floor_div(2);
        assert_eq!(e3, n()); // 2n+1 = 2*n + 1, remainder 1 in [0,2)
    }

    #[test]
    fn floor_div_opaque_when_inexact() {
        let e = n().floor_div(2); // floor(n/2) cannot simplify
        assert_eq!(e.eval_count(&bindings(&[("n", 7)])).unwrap(), 3);
        assert_eq!(e.eval_count(&bindings(&[("n", 8)])).unwrap(), 4);
    }

    #[test]
    fn floor_div_constant() {
        assert_eq!(SymExpr::constant(7).floor_div(2).as_int(), Some(3));
        assert_eq!(SymExpr::constant(-7).floor_div(2).as_int(), Some(-4));
    }

    #[test]
    fn clamp_semantics() {
        let e = (n() - SymExpr::constant(5)).clamp0();
        assert_eq!(e.eval_count(&bindings(&[("n", 3)])).unwrap(), 0);
        assert_eq!(e.eval_count(&bindings(&[("n", 8)])).unwrap(), 3);
        assert_eq!(SymExpr::constant(-4).clamp0().as_int(), Some(0));
        assert_eq!(SymExpr::constant(4).clamp0().as_int(), Some(4));
    }

    #[test]
    fn missing_param_error() {
        let e = n();
        assert_eq!(
            e.eval(&bindings(&[])),
            Err(EvalError::MissingParam("n".to_string()))
        );
    }

    #[test]
    fn coefficients_of_var() {
        // 3n^2*m + 2n + 5  →  [5, 2, 3m] in n
        let e = n().pow(2).scale(Rat::int(3)) * SymExpr::param("m")
            + n().scale(Rat::int(2))
            + SymExpr::constant(5);
        let cs = e.coefficients_of("n");
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].as_int(), Some(5));
        assert_eq!(cs[1].as_int(), Some(2));
        assert_eq!(
            cs[2],
            SymExpr::param("m").scale(Rat::int(3))
        );
    }

    #[test]
    fn composite_atom_detection() {
        let e = n().floor_div(2);
        assert!(e.param_in_composite_atom("n"));
        assert!(!n().param_in_composite_atom("n"));
    }

    #[test]
    fn display_renders() {
        let e = n().pow(2).scale(Rat::new(3, 2)) + n() - SymExpr::constant(1);
        let s = e.to_string();
        assert!(s.contains("3/2*n^2"), "{s}");
        assert!(s.contains("- 1"), "{s}");
    }

    #[test]
    fn eval_count_rounds_fractions() {
        let e = n().scale(Rat::new(3, 10)); // 0.3 * n
        assert_eq!(e.eval_count(&bindings(&[("n", 10)])).unwrap(), 3);
        assert_eq!(e.eval_count(&bindings(&[("n", 5)])).unwrap(), 2); // 1.5 → 2
    }
}
