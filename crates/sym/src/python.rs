//! Rendering symbolic expressions as Python source.
//!
//! The paper's Model Generator emits Python so users can evaluate and plot
//! models with standard scientific-Python tooling. This module renders a
//! [`SymExpr`] as a Python expression over its parameter names, using `//`
//! for floor division and `max(0, ·)` for clamps. Rational coefficients are
//! emitted as `Fraction`-free `num*mono/den` groupings wrapped in a final
//! integer conversion by the model emitter.

use crate::expr::{Atom, SymExpr};

/// Render `e` as a Python expression string.
///
/// The result is a pure-Python arithmetic expression over the expression's
/// parameter names. Terms with non-integer coefficients are emitted as
/// `(num * mono) / den`; the `mira-model` emitter wraps whole metric
/// expressions in `int(round(...))` so exact integer-valued rationals
/// survive the trip through Python floats for all realistic magnitudes.
pub fn to_python(e: &SymExpr) -> String {
    if e.terms().is_empty() {
        return "0".to_string();
    }
    let mut parts: Vec<String> = Vec::new();
    for (i, t) in e.terms().iter().enumerate() {
        let mut factors: Vec<String> = Vec::new();
        let num = t.coeff.num();
        let den = t.coeff.den();
        let lead = num.abs();
        if lead != 1 || t.monomial.is_empty() {
            factors.push(lead.to_string());
        }
        for (atom, p) in &t.monomial {
            let a = atom_to_python(atom);
            if *p == 1 {
                factors.push(a);
            } else {
                factors.push(format!("{a}**{p}"));
            }
        }
        let mut term = factors.join("*");
        if den != 1 {
            term = format!("({term})/{den}");
        }
        if i == 0 {
            if num < 0 {
                term = format!("-{term}");
            }
            parts.push(term);
        } else if num < 0 {
            parts.push(format!("- {term}"));
        } else {
            parts.push(format!("+ {term}"));
        }
    }
    parts.join(" ")
}

fn atom_to_python(a: &Atom) -> String {
    match a {
        Atom::Param(n) => n.clone(),
        Atom::FloorDiv(e, d) => format!("(({}) // {d})", to_python(e)),
        Atom::Clamp(e) => format!("max(0, {})", to_python(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rat;

    #[test]
    fn renders_polynomial() {
        let n = SymExpr::param("n");
        let e = n.clone().pow(2).scale(Rat::int(3)) + n.clone() - SymExpr::constant(2);
        let s = to_python(&e);
        assert!(s.contains("3*n**2"), "{s}");
        assert!(s.contains("-2") || s.contains("- 2"), "{s}");
    }

    #[test]
    fn renders_rational_coeff() {
        let n = SymExpr::param("n");
        let e = n.clone() * (n + SymExpr::constant(1));
        let half = e.scale(Rat::new(1, 2));
        let s = to_python(&half);
        assert!(s.contains("/2"), "{s}");
    }

    #[test]
    fn renders_floor_and_clamp() {
        let n = SymExpr::param("n");
        let e = n.clone().floor_div(2) + (n - SymExpr::constant(3)).clamp0();
        let s = to_python(&e);
        assert!(s.contains("// 2"), "{s}");
        assert!(s.contains("max(0, "), "{s}");
    }

    #[test]
    fn zero_renders() {
        assert_eq!(to_python(&SymExpr::zero()), "0");
    }

    /// The generated Python must agree with native evaluation. We cannot run
    /// Python here, so check a mechanical property instead: every parameter
    /// appears and operators are balanced.
    #[test]
    fn parens_balanced() {
        let n = SymExpr::param("n");
        let m = SymExpr::param("m");
        let e = (n.clone().floor_div(4) * m).pow(2) + n.clamp0();
        let s = to_python(&e);
        let open = s.chars().filter(|&c| c == '(').count();
        let close = s.chars().filter(|&c| c == ')').count();
        assert_eq!(open, close, "{s}");
        assert!(s.contains('n') && s.contains('m'));
    }
}
