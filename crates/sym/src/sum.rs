//! Closed-form summation of polynomials — the engine behind symbolic
//! integer-point counting in `mira-poly`.
//!
//! For a polynomial `e(v)` and affine/polynomial bounds `lb`, `ub` (free of
//! `v`), [`sum_over`] computes `Σ_{v=lb}^{ub} e(v)` as a polynomial in the
//! remaining atoms using Faulhaber power-sum polynomials
//! `S_k(x) = Σ_{v=1}^{x} v^k`. The telescoping identity
//! `Σ_{v=lb}^{ub} v^k = S_k(ub) − S_k(lb−1)` holds for **all** integers
//! `lb ≤ ub` because `S_k(x) − S_k(x−1) = x^k` is a polynomial identity.

use crate::expr::SymExpr;
use crate::rat::Rat;
use std::fmt;

/// Why a closed-form sum could not be produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SumError {
    /// The summation variable occurs inside a floor-div or clamp atom, so
    /// the summand is not polynomial in it.
    NonPolynomial(String),
    /// A bound expression itself depends on the summation variable.
    BoundDependsOnVar(String),
}

impl fmt::Display for SumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SumError::NonPolynomial(v) => {
                write!(f, "summand is not polynomial in `{v}` (occurs inside floor/clamp)")
            }
            SumError::BoundDependsOnVar(v) => {
                write!(f, "summation bound depends on the summation variable `{v}`")
            }
        }
    }
}

impl std::error::Error for SumError {}

fn binomial(n: u32, k: u32) -> i128 {
    if k > n {
        return 0;
    }
    let mut r: i128 = 1;
    for i in 0..k as i128 {
        r = r * (n as i128 - i) / (i + 1);
    }
    r
}

/// Dense coefficients (index = power of `x`) of the Faulhaber polynomial
/// `S_k(x) = Σ_{v=1}^{x} v^k`.
///
/// Computed from the recurrence
/// `(x+1)^{k+1} − 1 = Σ_{j=0}^{k} C(k+1, j) S_j(x)`.
pub fn power_sum_poly(k: u32) -> Vec<Rat> {
    let mut cache: Vec<Vec<Rat>> = Vec::with_capacity(k as usize + 1);
    for kk in 0..=k {
        // rhs = (x+1)^{kk+1} - 1 expanded
        let mut rhs = vec![Rat::ZERO; kk as usize + 2];
        for i in 0..=(kk + 1) {
            rhs[i as usize] = Rat::int(binomial(kk + 1, i));
        }
        rhs[0] = rhs[0].checked_sub(Rat::ONE).unwrap();
        // subtract C(kk+1, j) * S_j for j < kk
        for (j, sj) in cache.iter().enumerate() {
            let c = Rat::int(binomial(kk + 1, j as u32));
            for (i, v) in sj.iter().enumerate() {
                rhs[i] = rhs[i]
                    .checked_sub(c.checked_mul(*v).unwrap())
                    .unwrap();
            }
        }
        // divide by C(kk+1, kk) = kk+1
        let d = Rat::int((kk + 1) as i128);
        let sk: Vec<Rat> = rhs
            .into_iter()
            .map(|c| c.checked_div(d).unwrap())
            .collect();
        cache.push(sk);
    }
    cache.pop().unwrap()
}

/// Evaluate the univariate polynomial with dense coefficients `coeffs` at
/// the symbolic point `x`.
fn poly_at(coeffs: &[Rat], x: &SymExpr) -> SymExpr {
    // Horner's scheme keeps intermediate expressions small.
    let mut acc = SymExpr::zero();
    for c in coeffs.iter().rev() {
        acc = acc.mul_expr(x).add_expr(&SymExpr::from_rat(*c));
    }
    acc
}

/// `Σ_{var=lb}^{ub} expr`, as a closed-form polynomial.
///
/// The caller is responsible for the emptiness guard (`lb ≤ ub`); wrap the
/// result (or the extent) in [`SymExpr::clamp0`] when emptiness is possible.
pub fn sum_over(
    expr: &SymExpr,
    var: &str,
    lb: &SymExpr,
    ub: &SymExpr,
) -> Result<SymExpr, SumError> {
    let _a = mira_probe::accum("sym.sum_over");
    if expr.param_in_composite_atom(var) {
        return Err(SumError::NonPolynomial(var.to_string()));
    }
    if lb.params().iter().any(|p| p == var) || ub.params().iter().any(|p| p == var) {
        return Err(SumError::BoundDependsOnVar(var.to_string()));
    }
    let coeffs = expr.coefficients_of(var);
    let lb_m1 = lb.sub_expr(&SymExpr::constant(1));
    let mut out = SymExpr::zero();
    for (k, ck) in coeffs.iter().enumerate() {
        if ck.is_zero() {
            continue;
        }
        let sk = power_sum_poly(k as u32);
        let part = poly_at(&sk, ub).sub_expr(&poly_at(&sk, &lb_m1));
        out = out.add_expr(&ck.mul_expr(&part));
    }
    Ok(out)
}

/// Exact average of `expr` over `var ∈ [lb, ub]` (assumed nonempty):
/// the closed form of `sum_over(expr, var, lb, ub) / (ub − lb + 1)`.
///
/// The average of a polynomial over a symbolic range is a quotient by the
/// symbolic extent and leaves the polynomial ring in general, so this is
/// restricted to summands **affine** in `var`, where Faulhaber's `S_1`
/// telescopes to the endpoint mean: `avg = (expr(lb) + expr(ub)) / 2`.
/// This is the per-iteration *average extent* of a triangular loop
/// (`for j in 0..i`) over its ancestor's range — multiplied back by the
/// ancestor's trip count it recovers `sum_over` exactly, which is what
/// makes products of average extents exact iteration counts. Higher
/// degrees and `var` inside floor/clamp atoms refuse with the same
/// [`SumError`] taxonomy as [`sum_over`].
pub fn avg_over(
    expr: &SymExpr,
    var: &str,
    lb: &SymExpr,
    ub: &SymExpr,
) -> Result<SymExpr, SumError> {
    if expr.param_in_composite_atom(var) || expr.degree_in(var) > 1 {
        return Err(SumError::NonPolynomial(var.to_string()));
    }
    if lb.params().iter().any(|p| p == var) || ub.params().iter().any(|p| p == var) {
        return Err(SumError::BoundDependsOnVar(var.to_string()));
    }
    let at_lb = expr.substitute(var, lb);
    let at_ub = expr.substitute(var, ub);
    Ok(at_lb.add_expr(&at_ub).scale(Rat::new(1, 2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bindings, Bindings};
    use proptest::prelude::*;

    fn brute(expr: &SymExpr, var: &str, lb: i128, ub: i128, extra: &Bindings) -> i128 {
        let mut total = 0i128;
        for v in lb..=ub {
            let mut b = extra.clone();
            b.insert(var.to_string(), v);
            total += expr.eval_count(&b).unwrap();
        }
        total
    }

    #[test]
    fn faulhaber_small() {
        // S_1(x) = x(x+1)/2
        let s1 = power_sum_poly(1);
        assert_eq!(s1, vec![Rat::ZERO, Rat::new(1, 2), Rat::new(1, 2)]);
        // S_2(x) = x(x+1)(2x+1)/6 = x/6 + x^2/2 + x^3/3
        let s2 = power_sum_poly(2);
        assert_eq!(
            s2,
            vec![Rat::ZERO, Rat::new(1, 6), Rat::new(1, 2), Rat::new(1, 3)]
        );
    }

    #[test]
    fn sum_constant_gives_extent() {
        // Σ_{v=lb}^{ub} 1 = ub - lb + 1
        let one = SymExpr::constant(1);
        let lb = SymExpr::param("a");
        let ub = SymExpr::param("b");
        let s = sum_over(&one, "v", &lb, &ub).unwrap();
        let b = bindings(&[("a", 3), ("b", 10)]);
        assert_eq!(s.eval_count(&b).unwrap(), 8);
    }

    #[test]
    fn sum_linear_symbolic_bounds() {
        // Σ_{j=i+1}^{6} 1 summed in mira-poly style: inner extent 6-(i+1)+1 = 6-i
        let one = SymExpr::constant(1);
        let lb = SymExpr::param("i") + SymExpr::constant(1);
        let ub = SymExpr::constant(6);
        let inner = sum_over(&one, "j", &lb, &ub).unwrap();
        // then Σ_{i=1}^{4} (6 - i) = 5+4+3+2 = 14 (the paper's Listing 2 domain)
        let outer = sum_over(&inner, "i", &SymExpr::constant(1), &SymExpr::constant(4)).unwrap();
        assert_eq!(outer.as_int(), Some(14));
    }

    #[test]
    fn sum_quadratic() {
        // Σ_{v=1}^{n} v^2 = n(n+1)(2n+1)/6
        let e = SymExpr::param("v").pow(2);
        let s = sum_over(&e, "v", &SymExpr::constant(1), &SymExpr::param("n")).unwrap();
        for n in [1i128, 2, 5, 17, 100] {
            let b = bindings(&[("n", n)]);
            assert_eq!(s.eval_count(&b).unwrap(), n * (n + 1) * (2 * n + 1) / 6);
        }
    }

    #[test]
    fn sum_negative_bounds() {
        let e = SymExpr::param("v");
        let s = sum_over(&e, "v", &SymExpr::constant(-3), &SymExpr::constant(3)).unwrap();
        assert_eq!(s.as_int(), Some(0));
        let s2 = sum_over(&e, "v", &SymExpr::constant(-5), &SymExpr::constant(-2)).unwrap();
        assert_eq!(s2.as_int(), Some(-14));
    }

    #[test]
    fn avg_over_is_endpoint_mean() {
        // avg_{v=0}^{i} v = i/2, and extent · avg = Σ exactly
        let v = SymExpr::param("v");
        let lb = SymExpr::constant(0);
        let ub = SymExpr::param("i");
        let avg = avg_over(&v, "v", &lb, &ub).unwrap();
        let extent = ub.clone().sub_expr(&lb).add_expr(&SymExpr::constant(1));
        let product = avg.mul_expr(&extent);
        let total = sum_over(&v, "v", &lb, &ub).unwrap();
        assert!(product.sub_expr(&total).is_zero());
        for i in [0i128, 1, 2, 9] {
            let b = bindings(&[("i", i)]);
            assert_eq!(product.eval_count(&b).unwrap(), i * (i + 1) / 2);
        }
    }

    #[test]
    fn avg_over_rejects_quadratic_and_floor() {
        let v = SymExpr::param("v");
        assert!(matches!(
            avg_over(&v.clone().pow(2), "v", &SymExpr::constant(0), &SymExpr::param("n")),
            Err(SumError::NonPolynomial(_))
        ));
        assert!(matches!(
            avg_over(&v.clone().floor_div(2), "v", &SymExpr::constant(0), &SymExpr::param("n")),
            Err(SumError::NonPolynomial(_))
        ));
        assert!(matches!(
            avg_over(&v, "v", &SymExpr::param("v"), &SymExpr::param("n")),
            Err(SumError::BoundDependsOnVar(_))
        ));
    }

    #[test]
    fn sum_rejects_floor_of_var() {
        let e = SymExpr::param("v").floor_div(2);
        let r = sum_over(&e, "v", &SymExpr::constant(0), &SymExpr::constant(9));
        assert!(matches!(r, Err(SumError::NonPolynomial(_))));
    }

    #[test]
    fn sum_rejects_var_in_bound() {
        let e = SymExpr::constant(1);
        let r = sum_over(&e, "v", &SymExpr::param("v"), &SymExpr::constant(9));
        assert!(matches!(r, Err(SumError::BoundDependsOnVar(_))));
    }

    #[test]
    fn sum_preserves_outer_params() {
        // Σ_{v=1}^{n} m = m*n
        let e = SymExpr::param("m");
        let s = sum_over(&e, "v", &SymExpr::constant(1), &SymExpr::param("n")).unwrap();
        assert_eq!(
            s,
            SymExpr::param("m") * SymExpr::param("n")
        );
    }

    proptest! {
        #[test]
        fn prop_sum_matches_brute_force(
            c0 in -5i128..5, c1 in -5i128..5, c2 in -5i128..5, c3 in 0i128..4,
            lb in -6i128..6, len in 0i128..10,
        ) {
            let v = SymExpr::param("v");
            let e = SymExpr::constant(c0)
                + v.clone().scale(Rat::int(c1))
                + v.clone().pow(2).scale(Rat::int(c2))
                + v.clone().pow(3).scale(Rat::int(c3));
            let ub = lb + len;
            let s = sum_over(&e, "v", &SymExpr::constant(lb), &SymExpr::constant(ub)).unwrap();
            let expected = brute(&e, "v", lb, ub, &bindings(&[]));
            prop_assert_eq!(s.as_int(), Some(expected));
        }

        #[test]
        fn prop_sum_symbolic_ub_matches(
            c1 in -4i128..4, n in 0i128..30,
        ) {
            // Σ_{v=0}^{n} (v*c1 + 2), evaluated after the fact
            let v = SymExpr::param("v");
            let e = v.scale(Rat::int(c1)) + SymExpr::constant(2);
            let s = sum_over(&e, "v", &SymExpr::constant(0), &SymExpr::param("n")).unwrap();
            let b = bindings(&[("n", n)]);
            let expected = brute(&e, "v", 0, n, &b);
            prop_assert_eq!(s.eval_count(&b).unwrap(), expected);
        }
    }
}
