//! # mira-sym — symbolic algebra for parametric performance models
//!
//! Mira's generated models are *parametric*: iteration counts and metric
//! totals are polynomials (occasionally quasi-polynomials) in user-supplied
//! parameters such as problem sizes. This crate provides the symbolic
//! expression type [`SymExpr`] those models are built from:
//!
//! * exact rational coefficients ([`Rat`], `i128`-backed),
//! * multivariate monomials over [`Atom`]s — named parameters, floor
//!   divisions `⌊e/d⌋` (from strided loops), and `max(0, e)` clamps (from
//!   possibly-empty iteration domains),
//! * polynomial arithmetic, substitution, exact evaluation,
//! * closed-form summation `Σ_{v=lb}^{ub} e` via Faulhaber power-sum
//!   polynomials — the engine behind polyhedral point counting in
//!   `mira-poly`,
//! * rendering as text and as Python source (the paper's model language).
//!
//! All arithmetic is exact; evaluation returns integers (counts) and fails
//! loudly on overflow rather than silently saturating.
//!
//! Analysis over untrusted input runs inside a [`budget`] scope: fuel
//! limits and recursion-depth guards turn worst-case symbolic blowups
//! (term explosion, deep atom nesting, coefficient overflow) into typed
//! [`budget::BudgetError`] refusals instead of hangs, host-stack
//! overflows, or panics.

pub mod budget;
pub mod expr;
pub mod python;
pub mod rat;
pub mod sum;

pub use expr::{Atom, EvalError, SymExpr, Term};
pub use rat::Rat;

use std::collections::BTreeMap;

/// Parameter bindings used when evaluating a [`SymExpr`] to a concrete count.
pub type Bindings = BTreeMap<String, i128>;

/// Convenience constructor for bindings: `bindings(&[("n", 100)])`.
pub fn bindings(pairs: &[(&str, i128)]) -> Bindings {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_builder() {
        let b = bindings(&[("n", 10), ("m", 20)]);
        assert_eq!(b.get("n"), Some(&10));
        assert_eq!(b.get("m"), Some(&20));
        assert_eq!(b.len(), 2);
    }
}
