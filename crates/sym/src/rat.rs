//! Exact rational numbers on `i128`.
//!
//! Coefficients of Faulhaber polynomials are rationals (e.g. `1/6` in
//! `Σ v² = n(n+1)(2n+1)/6`), so [`SymExpr`](crate::SymExpr) terms carry a
//! [`Rat`] coefficient. All operations are checked: an overflow is a
//! programming/scale error we want surfaced, not wrapped.

use std::cmp::Ordering;
use std::fmt;

/// A reduced rational number `num/den` with `den > 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    // i128 division lowers to a library call; coefficient magnitudes
    // almost always fit u64, where the loop runs on hardware division
    if a <= u64::MAX as i128 && b <= u64::MAX as i128 {
        let (mut a, mut b) = (a as u64, b as u64);
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        return a as i128;
    }
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Create a rational from numerator and denominator. Panics on zero
    /// denominator; reduces to lowest terms with a positive denominator.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat with zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    pub fn int(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    pub fn num(&self) -> i128 {
        self.num
    }

    pub fn den(&self) -> i128 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The integer value, if this rational is an integer.
    pub fn as_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Floor of the rational value.
    pub fn floor(&self) -> i128 {
        if self.den == 1 {
            return self.num;
        }
        // i128 division is a library call; operands almost always fit
        // i64, where div_euclid is a single hardware division
        if let (Ok(n), Ok(d)) = (i64::try_from(self.num), i64::try_from(self.den)) {
            return n.div_euclid(d) as i128;
        }
        self.num.div_euclid(self.den)
    }

    /// Ceiling of the rational value.
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    pub fn checked_add(self, o: Rat) -> Option<Rat> {
        // integer + integer needs no reduction — the general path below
        // computes the same value, just through three needless gcds
        if self.den == 1 && o.den == 1 {
            return self.num.checked_add(o.num).map(Rat::int);
        }
        // equal denominators (fraction accumulators): add numerators,
        // reduce once — the general path reaches the identical
        // `Rat::new(a + c, b)` through two extra gcds
        if self.den == o.den {
            let num = self.num.checked_add(o.num)?;
            return Some(Rat::new(num, self.den));
        }
        // one side integer: a/b + c = (a + c·b)/b, already in lowest
        // terms since gcd(a, b) = 1 — same value and overflow points as
        // the general path (whose cross terms are a·1 and c·b), no gcds
        if o.den == 1 {
            let num = self.num.checked_add(o.num.checked_mul(self.den)?)?;
            return Some(Rat { num, den: self.den });
        }
        if self.den == 1 {
            let num = o.num.checked_add(self.num.checked_mul(o.den)?)?;
            return Some(Rat { num, den: o.den });
        }
        // a/b + c/d = (a*d + c*b) / (b*d), reduce via gcd of denominators
        let g = gcd(self.den, o.den).max(1);
        let lhs = self.num.checked_mul(o.den / g)?;
        let rhs = o.num.checked_mul(self.den / g)?;
        let num = lhs.checked_add(rhs)?;
        let den = (self.den / g).checked_mul(o.den)?;
        Some(Rat::new(num, den))
    }

    pub fn checked_mul(self, o: Rat) -> Option<Rat> {
        // integer × integer is already in lowest terms; when both fit
        // i64 the widening product cannot overflow i128, skipping the
        // checked multiply's software path entirely
        if self.den == 1 && o.den == 1 {
            if let (Ok(a), Ok(b)) = (i64::try_from(self.num), i64::try_from(o.num)) {
                return Some(Rat::int(a as i128 * b as i128));
            }
            return self.num.checked_mul(o.num).map(Rat::int);
        }
        // one side integer: a/b · c = (a·(c/g)) / (b/g) with
        // g = gcd(c, b); reduced because gcd(a, b/g) = 1 and
        // gcd(c/g, b/g) = 1 — one gcd instead of three
        if o.den == 1 {
            let g = gcd(o.num, self.den).max(1);
            let num = self.num.checked_mul(o.num / g)?;
            return Some(Rat { num, den: self.den / g });
        }
        if self.den == 1 {
            let g = gcd(self.num, o.den).max(1);
            let num = o.num.checked_mul(self.num / g)?;
            return Some(Rat { num, den: o.den / g });
        }
        let g1 = gcd(self.num, o.den).max(1);
        let g2 = gcd(o.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(o.num / g2)?;
        let den = (self.den / g2).checked_mul(o.den / g1)?;
        Some(Rat::new(num, den))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }

    pub fn checked_sub(self, o: Rat) -> Option<Rat> {
        self.checked_add(o.neg())
    }

    /// Multiplicative inverse; `None` for zero.
    pub fn recip(self) -> Option<Rat> {
        // a reduced rational's inverse is already reduced — only the
        // sign needs to move to keep the denominator positive
        if self.num == 0 {
            None
        } else if self.num < 0 {
            Some(Rat {
                num: -self.den,
                den: self.num.checked_neg()?,
            })
        } else {
            Some(Rat {
                num: self.den,
                den: self.num,
            })
        }
    }

    pub fn checked_div(self, o: Rat) -> Option<Rat> {
        self.checked_mul(o.recip()?)
    }

    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Approximate value as `f64` (display / plotting only; never used for
    /// counting).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Round to the nearest integer, half away from zero — the rounding
    /// count evaluation applies to annotation fractions (see
    /// [`SymExpr::eval_count`](crate::SymExpr::eval_count)). `None` when
    /// the doubling step overflows `i128`. Kept here so every consumer
    /// (tree-walk evaluation, the nest traffic model, the compiled
    /// serving evaluator) rounds identically.
    pub fn round_count(self) -> Option<i128> {
        if let Some(i) = self.as_integer() {
            return Some(i);
        }
        let twice = self.checked_mul(Rat::int(2))?;
        let f = twice.floor();
        Some(if f >= 0 { (f + 1) / 2 } else { f / 2 })
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // equal (positive) denominators compare by numerator — this
        // covers the hot integer-vs-integer case without multiplies
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0). i128 is wide enough for
        // the coefficient magnitudes we produce; fall back to f64 ordering
        // on overflow would be wrong, so use saturating wide compare.
        let l = self.num.checked_mul(other.den);
        let r = other.num.checked_mul(self.den);
        match (l, r) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Rat {
        Rat::int(v)
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::int(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduction_and_sign() {
        let r = Rat::new(6, -4);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 2);
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(Rat::new(-2, -2), Rat::ONE);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a.checked_add(b).unwrap(), Rat::new(5, 6));
        assert_eq!(a.checked_sub(b).unwrap(), Rat::new(1, 6));
        assert_eq!(a.checked_mul(b).unwrap(), Rat::new(1, 6));
        assert_eq!(a.checked_div(b).unwrap(), Rat::new(3, 2));
        assert_eq!(Rat::ZERO.recip(), None);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(2, 4).cmp(&Rat::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 2).to_string(), "3/2");
        assert_eq!(Rat::int(-4).to_string(), "-4");
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in -1000i128..1000, b in 1i128..100, c in -1000i128..1000, d in 1i128..100) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            prop_assert_eq!(x.checked_add(y), y.checked_add(x));
        }

        #[test]
        fn prop_mul_distributes(a in -100i128..100, b in 1i128..20, c in -100i128..100, d in 1i128..20, e in -100i128..100, f in 1i128..20) {
            let x = Rat::new(a, b);
            let y = Rat::new(c, d);
            let z = Rat::new(e, f);
            let lhs = x.checked_mul(y.checked_add(z).unwrap()).unwrap();
            let rhs = x.checked_mul(y).unwrap().checked_add(x.checked_mul(z).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_floor_matches_f64(a in -10_000i128..10_000, b in 1i128..1000) {
            let r = Rat::new(a, b);
            prop_assert_eq!(r.floor(), (a as f64 / b as f64).floor() as i128);
        }
    }
}
