//! Roofline classification must be invariant under register allocation.
//!
//! `Options::regalloc` changes how many *frame* (spill-slot) accesses a
//! kernel retires — sometimes by 2× — but a kernel's position on the
//! roofline is a statement about its data movement and FLOPs, not about
//! the compiler's register pressure. The roofline engine therefore
//! excludes frame traffic from every memory ceiling (the data/frame
//! split of `ModelOp::MemAcc`), and this suite pins the consequence as a
//! property: for the benchmark kernels across random problem sizes, the
//! closed-form data bytes, FLOPs and the resulting bound classification
//! are identical whether the allocator ran or not — statically, and (for
//! a spot check) through the cache simulator too.

use mira_core::{analyze_source, Analysis, MiraOptions};
use mira_roofline::{dynamic_placement, Ceilings, KernelRoofline};
use mira_sym::bindings;
use mira_vm::{HostVal, Vm, VmOptions};
use mira_workloads::dgemm::DGEMM_SRC;
use mira_workloads::memval::TRIAD_SRC;
use mira_workloads::stream::STREAM_SRC;
use proptest::prelude::*;

/// A register-only inner kernel: heavy FP recurrence, no array traffic —
/// compute-bound, and the shape where spill-everything adds the most
/// relative frame traffic.
const POLY_SRC: &str = "double horner(int n, int reps, double x) {\n\
    double acc = 0.0;\n\
    for (int r = 0; r < reps; r++) {\n\
        for (int i = 0; i < n; i++) {\n\
            acc = acc * x + 1.0;\n\
            acc = acc * x + 2.0;\n\
        }\n\
    }\n\
    return acc;\n}";

const KERNELS: [(&str, &str); 4] = [
    (TRIAD_SRC, "triad"),
    (STREAM_SRC, "stream_kernels"),
    (DGEMM_SRC, "dgemm"),
    (POLY_SRC, "horner"),
];

fn both_modes(src: &str) -> (Analysis, Analysis) {
    let on = analyze_source(src, &MiraOptions::default()).expect("regalloc analysis");
    let off = analyze_source(
        src,
        &MiraOptions {
            compiler: mira_vcc::Options::spill_everything(),
            ..MiraOptions::default()
        },
    )
    .expect("spill analysis");
    (on, off)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn classification_invariant_under_regalloc(
        which in 0usize..KERNELS.len(),
        n in 4i64..2048,
        reps in 1i64..8,
    ) {
        let (src, func) = KERNELS[which];
        let n = if func == "dgemm" { 2 + n % 48 } else { n }; // keep n³ sane
        let (on, off) = both_modes(src);
        let k_on = KernelRoofline::analyze(&on, func).unwrap();
        let k_off = KernelRoofline::analyze(&off, func).unwrap();
        let c = Ceilings::from_arch(&on.arch);
        let b = bindings(&[("n", n as i128), ("reps", reps as i128)]);

        // the roofline inputs are allocation-invariant closed forms …
        prop_assert_eq!(
            k_on.flops.eval_count(&b).unwrap(),
            k_off.flops.eval_count(&b).unwrap(),
            "FLOPs differ for {}", func
        );
        prop_assert_eq!(
            k_on.data_bytes().eval_count(&b).unwrap(),
            k_off.data_bytes().eval_count(&b).unwrap(),
            "data bytes differ for {}", func
        );
        prop_assert_eq!(
            k_on.footprint_lines.eval_count(&b).unwrap(),
            k_off.footprint_lines.eval_count(&b).unwrap(),
            "footprints differ for {}", func
        );

        // … so the placement is identical, ceiling by ceiling
        let p_on = k_on.place(&c, &b).unwrap();
        let p_off = k_off.place(&c, &b).unwrap();
        prop_assert_eq!(p_on, p_off, "placement differs for {} at n={n} reps={reps}", func);

        // while the *total* bytes genuinely differ whenever the spill
        // build moved traffic to the frame (regression guard: the split
        // is doing real work, not vacuously equal)
        let total_on = on.report(func, &b).unwrap().total_bytes();
        let total_off = off.report(func, &b).unwrap().total_bytes();
        prop_assert!(total_on <= total_off, "regalloc never adds traffic");
    }
}

/// The dynamic side of the same property, spot-checked: identical cache
/// simulator placement for both builds of the triad (the simulator sees
/// different stack traffic, but stack lines are few and L1-resident, and
/// the data-byte ceilings dominate the classification).
#[test]
fn dynamic_classification_invariant_under_regalloc() {
    let (on, off) = both_modes(TRIAD_SRC);
    let c = Ceilings::from_arch(&on.arch);
    let (n, reps) = (1024i64, 4i64);
    let b = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let run = |analysis: &Analysis| {
        let mut vm = Vm::load(
            &analysis.object,
            VmOptions {
                mem_profile: Some(analysis.arch.cache_hierarchy()),
                ..VmOptions::default()
            },
        )
        .unwrap();
        let a = vm.alloc_f64(&vec![1.0; n as usize]);
        let bb = vm.alloc_f64(&vec![2.0; n as usize]);
        let cc = vm.alloc_f64(&vec![0.5; n as usize]);
        vm.call(
            "triad",
            &[
                HostVal::Int(n),
                HostVal::Int(reps),
                HostVal::Int(a as i64),
                HostVal::Int(bb as i64),
                HostVal::Int(cc as i64),
                HostVal::Fp(3.0),
            ],
        )
        .unwrap();
        vm.flush_mem();
        vm.mem_stats().unwrap()
    };
    let kernel = KernelRoofline::analyze(&on, "triad").unwrap();
    let flops = kernel.flops.eval_count(&b).unwrap();
    let p_on = dynamic_placement(flops, &run(&on), &c, false);
    let p_off = dynamic_placement(flops, &run(&off), &c, false);
    assert_eq!(p_on.binding, p_off.binding, "{p_on} vs {p_off}");
    // and both match the static call
    let p_static = kernel.place(&c, &b).unwrap();
    assert_eq!(p_static.binding, p_on.binding, "{p_static} vs {p_on}");
}
