//! Allocation-mode equivalence suite.
//!
//! `mira-vcc` now has two codegen modes: register allocation (the
//! default) and the seed's spill-everything baseline. For every corpus
//! program and the three benchmark workloads this suite pins, in *both*
//! modes:
//!
//! * identical program results — return values and all array memory are
//!   bit-for-bit equal between the two compilations;
//! * bit-identical profiles between the block-dispatch engine and the
//!   per-step `ReferenceVm`;
//! * static-report == dynamic-profile, category by category, whenever
//!   the program is in the exactly-analyzable affine subset;
//! * fewer (never more) dynamically retired instructions with register
//!   allocation on.

use mira_core::{analyze_source, Analysis, MiraOptions};
use mira_minic::Type;
use mira_sym::Bindings;
use mira_vm::reference::ReferenceVm;
use mira_vm::{HostVal, Vm};
use mira_workloads::corpus::corpus;
use mira_workloads::dgemm::DGEMM_SRC;
use mira_workloads::minife::MINIFE_SRC;
use mira_workloads::stream::STREAM_SRC;

/// Array length handed to every pointer parameter — large enough for
/// every index expression the programs form from `INT_ARG`-sized bounds.
const ARR: usize = 4096;
/// Value bound to every integer parameter.
const INT_ARG: i64 = 6;
/// Value bound to every double parameter.
const FP_ARG: f64 = 1.5;

fn pattern(seed: usize) -> Vec<f64> {
    (0..ARR)
        .map(|i| ((i + seed) % 7 + 1) as f64 * 0.25)
        .collect()
}

fn analyses(src: &str) -> (Analysis, Analysis) {
    let on = analyze_source(src, &MiraOptions::default()).expect("regalloc analysis");
    let off = analyze_source(
        src,
        &MiraOptions {
            compiler: mira_vcc::Options::spill_everything(),
            ..MiraOptions::default()
        },
    )
    .expect("spill analysis");
    (on, off)
}

/// The memory both engines must agree on after a run: every allocated
/// array, read back.
#[derive(PartialEq, Debug, Default)]
struct RunState {
    returns: Vec<u64>,
    f64_arrays: Vec<Vec<u64>>,
    i64_arrays: Vec<Vec<i64>>,
}

/// Call every function of the program in order inside one VM, feeding
/// deterministic arguments by parameter type. Returns the observable
/// state plus the total retired-step count.
fn drive(analysis: &Analysis, vm: &mut dyn Driver) -> RunState {
    let mut state = RunState::default();
    let mut f64_addrs = Vec::new();
    let mut i64_addrs = Vec::new();
    for (fi, f) in analysis.program.functions().enumerate() {
        let mut args = Vec::new();
        for (pi, p) in f.params.iter().enumerate() {
            match &p.ty {
                Type::Int => args.push(HostVal::Int(INT_ARG)),
                Type::Double => args.push(HostVal::Fp(FP_ARG)),
                Type::Ptr(inner) if **inner == Type::Int => {
                    let a = vm.alloc_ints(&[0; ARR]);
                    i64_addrs.push(a);
                    args.push(HostVal::Int(a as i64));
                }
                Type::Ptr(_) => {
                    let a = vm.alloc_fps(&pattern(fi * 16 + pi));
                    f64_addrs.push(a);
                    args.push(HostVal::Int(a as i64));
                }
                other => panic!("unsupported parameter type {other}"),
            }
        }
        vm.call_fn(&f.name, &args);
        state.returns.push(if f.ret == Type::Double {
            vm.fp_ret().to_bits()
        } else {
            vm.int_ret() as u64
        });
    }
    for a in f64_addrs {
        state
            .f64_arrays
            .push(vm.read_fps(a, ARR).iter().map(|v| v.to_bits()).collect());
    }
    for a in i64_addrs {
        state.i64_arrays.push(vm.read_ints(a, ARR));
    }
    state
}

/// The slice of the two engines' APIs the driver needs.
trait Driver {
    fn alloc_fps(&mut self, data: &[f64]) -> u64;
    fn alloc_ints(&mut self, data: &[i64]) -> u64;
    fn read_fps(&self, addr: u64, n: usize) -> Vec<f64>;
    fn read_ints(&self, addr: u64, n: usize) -> Vec<i64>;
    fn call_fn(&mut self, name: &str, args: &[HostVal]);
    fn fp_ret(&self) -> f64;
    fn int_ret(&self) -> i64;
}

macro_rules! impl_driver {
    ($t:ty) => {
        impl Driver for $t {
            fn alloc_fps(&mut self, data: &[f64]) -> u64 {
                self.alloc_f64(data)
            }
            fn alloc_ints(&mut self, data: &[i64]) -> u64 {
                self.alloc_i64(data)
            }
            fn read_fps(&self, addr: u64, n: usize) -> Vec<f64> {
                self.read_f64(addr, n)
            }
            fn read_ints(&self, addr: u64, n: usize) -> Vec<i64> {
                self.read_i64(addr, n)
            }
            fn call_fn(&mut self, name: &str, args: &[HostVal]) {
                self.call(name, args)
                    .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            }
            fn fp_ret(&self) -> f64 {
                self.fp_return()
            }
            fn int_ret(&self) -> i64 {
                self.int_return()
            }
        }
    };
}

impl_driver!(Vm);
impl_driver!(ReferenceVm);

/// All the sources the suite covers.
fn suite() -> Vec<(&'static str, &'static str)> {
    let mut v = corpus();
    v.push(("stream", STREAM_SRC));
    v.push(("dgemm", DGEMM_SRC));
    v.push(("minife", MINIFE_SRC));
    v
}

#[test]
fn both_modes_compute_identical_results_and_identical_engine_profiles() {
    let mut total_on = 0u64;
    let mut total_off = 0u64;
    for (name, src) in suite() {
        let (on, off) = analyses(src);
        let mut states = Vec::new();
        let mut steps = Vec::new();
        for analysis in [&on, &off] {
            let mut vm = Vm::new(&analysis.object).unwrap();
            let state = drive(analysis, &mut vm);
            // the per-step reference interpreter must observe the exact
            // same memory, returns and profile as the engine
            let mut rvm = ReferenceVm::new(&analysis.object).unwrap();
            let rstate = drive(analysis, &mut rvm);
            assert_eq!(state, rstate, "{name}: engine vs reference state");
            assert_eq!(
                vm.profile(),
                rvm.profile(),
                "{name}: engine vs reference profile"
            );
            assert_eq!(vm.steps(), rvm.steps(), "{name}: step counts");
            steps.push(vm.steps());
            states.push(state);
        }
        assert_eq!(
            states[0], states[1],
            "{name}: regalloc and spill modes disagree on program results"
        );
        assert!(
            steps[0] <= steps[1],
            "{name}: regalloc retired more instructions ({} > {})",
            steps[0],
            steps[1]
        );
        total_on += steps[0];
        total_off += steps[1];
    }
    assert!(
        total_on < total_off,
        "register allocation did not reduce total retired instructions \
         ({total_on} vs {total_off})"
    );
}

/// For every program in the exactly-analyzable affine subset, the static
/// report must equal the dynamic inclusive profile category by category —
/// in both allocation modes.
#[test]
fn static_reports_match_dynamic_profiles_in_both_modes() {
    use mira_arch::Category;
    let mut exact_checks = 0usize;
    for (name, src) in suite() {
        let (on, off) = analyses(src);
        for (mode, analysis) in [("regalloc", &on), ("spill", &off)] {
            if !analysis.warnings.is_empty() {
                // outside the affine subset (data-dependent branches,
                // annotations, externs) static == dynamic does not hold;
                // those cases are covered by the result-equality test
                continue;
            }
            for f in analysis.program.functions() {
                let mut binds = Bindings::default();
                for p in &f.params {
                    if p.ty == Type::Int {
                        binds.insert(p.name.clone(), INT_ARG as i128);
                    }
                }
                let Ok(report) = analysis.report(&f.name, &binds) else {
                    continue;
                };
                let mut vm = Vm::new(&analysis.object).unwrap();
                let mut args = Vec::new();
                for (pi, p) in f.params.iter().enumerate() {
                    match &p.ty {
                        Type::Int => args.push(HostVal::Int(INT_ARG)),
                        Type::Double => args.push(HostVal::Fp(FP_ARG)),
                        Type::Ptr(inner) if **inner == Type::Int => {
                            args.push(HostVal::Int(vm.alloc_i64(&[0; ARR]) as i64))
                        }
                        Type::Ptr(_) => {
                            args.push(HostVal::Int(vm.alloc_f64(&pattern(pi)) as i64))
                        }
                        other => panic!("unsupported parameter type {other}"),
                    }
                }
                vm.call(&f.name, &args)
                    .unwrap_or_else(|e| panic!("{name}/{}: {e}", f.name));
                let prof = vm.profile();
                let dynamic = &prof.function(&f.name).unwrap().inclusive;
                for cat in Category::ALL {
                    assert_eq!(
                        report.counts.get(cat),
                        dynamic.get(cat),
                        "{name}/{} [{mode}] category {cat}",
                        f.name
                    );
                }
                exact_checks += 1;
            }
        }
    }
    assert!(
        exact_checks >= 10,
        "affine subset unexpectedly small: only {exact_checks} exact checks ran"
    );
}

/// The acceptance criterion in one focused assertion: the loop kernels'
/// dynamic retired-instruction counts drop with register allocation on.
#[test]
fn regalloc_shrinks_kernel_step_counts() {
    for (name, src, func, factor) in [
        ("stream", STREAM_SRC, "stream_bench", 1.3),
        ("dgemm", DGEMM_SRC, "dgemm_bench", 1.2),
        ("minife-dot", MINIFE_SRC, "dot", 1.5),
    ] {
        let (on, off) = analyses(src);
        let mut steps = Vec::new();
        for analysis in [&on, &off] {
            let mut vm = Vm::new(&analysis.object).unwrap();
            let f = analysis.program.function(func).unwrap().clone();
            let mut args = Vec::new();
            for (pi, p) in f.params.iter().enumerate() {
                match &p.ty {
                    Type::Int => args.push(HostVal::Int(32)),
                    Type::Double => args.push(HostVal::Fp(FP_ARG)),
                    Type::Ptr(_) => {
                        args.push(HostVal::Int(vm.alloc_f64(&pattern(pi)) as i64))
                    }
                    other => panic!("unsupported parameter type {other}"),
                }
            }
            vm.call(func, &args).unwrap();
            steps.push(vm.steps());
        }
        let reduction = steps[1] as f64 / steps[0] as f64;
        assert!(
            reduction >= factor,
            "{name}/{func}: step reduction only {reduction:.2}x ({} vs {})",
            steps[0],
            steps[1]
        );
    }
}
