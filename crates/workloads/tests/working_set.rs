//! Regression pins for the per-nest working-set traffic model — the
//! cases the ROADMAP named broken under the old whole-function
//! fits-or-streams decision.
//!
//! DGEMM at n=40 is the canonical shape: the 38 400-byte footprint
//! slightly exceeds the 32 KiB L1, so the binary model predicted a full
//! sweep at the L1↔L2 boundary and misclassified the kernel as
//! L2-bound, while the simulator observes compulsory-only misses (the
//! per-i working set — two rows plus all of b — fits L1). These tests
//! fail on the old model and pin the refinement: static placement ==
//! simulated placement, with the deeper cycle bounds agreeing *exactly*.

use mira_roofline::{Ceiling, Ceilings, KernelRoofline, MemLevel};
use mira_sym::bindings;
use mira_workloads::roofval;

/// The ROADMAP case: DGEMM n=40, footprint ≈ 1.17 × L1.
#[test]
fn dgemm_n40_static_placement_equals_simulated() {
    let row = roofval::dgemm_roof(40, 1);
    assert!(row.data_bytes_exact(), "{row:?}");
    // the regime under test: the whole footprint exceeds L1 …
    assert!(
        row.footprint_lines * 64 > 32 * 1024,
        "footprint {} lines no longer exceeds L1 — the regression case moved",
        row.footprint_lines
    );
    // … yet the simulator sees compulsory-only traffic, and now the
    // static model does too: the deeper bounds agree to the cycle
    assert_eq!(
        row.static_p.mem_cycles[1], row.dynamic_p.mem_cycles[1],
        "L2-boundary bound must be compulsory-only: static {} vs dynamic {}",
        row.static_p, row.dynamic_p
    );
    assert_eq!(
        row.static_p.mem_cycles[2], row.dynamic_p.mem_cycles[2],
        "DRAM-boundary bound must match: static {} vs dynamic {}",
        row.static_p, row.dynamic_p
    );
    // 600 compulsory fills + 200 write-backs of c, at 64 B per line
    assert_eq!(row.static_p.mem_cycles[1], 800.0 * 64.0 / 16.0);
    // the binding roof is the L1 knee, not a phantom L2 wall
    assert_eq!(row.static_p.binding, Ceiling::Mem(MemLevel::L1), "{}", row.static_p);
    assert!(row.agrees(), "static {} vs dynamic {}", row.static_p, row.dynamic_p);
}

/// The crossover knee, re-derived: DGEMM still leaves the DRAM roof at
/// n=9 onto the L1 knee (solver == brute-force sweep), and — new with
/// the working-set model — *stays* on the L1 roof through the whole
/// footprint-exceeds-L1 band. The old model flipped to a phantom L2
/// regime at n=37.
#[test]
fn dgemm_crossover_knee_re_pinned() {
    let (solved, swept) = roofval::dgemm_crossover(2, 64);
    assert_eq!(solved, swept, "solver must match the sweep");
    let x = solved.expect("DGEMM changes regime in [2, 64]");
    assert_eq!(x.value, 9, "the knee moved: {x:?}");
    assert_eq!(x.from, Ceiling::Mem(MemLevel::Dram));
    assert_eq!(x.to, Ceiling::Mem(MemLevel::L1));
    // beyond the knee the binding never changes again: the brute-force
    // sweep over the band where the footprint crosses L1 (n=37…) and
    // approaches L2 finds no second crossover
    let (solved, swept) = roofval::dgemm_crossover(9, 100);
    assert_eq!(swept, None, "phantom L2 crossover is back: {swept:?}");
    assert_eq!(solved, None);
}

/// Tiled DGEMM: b's reuse is per 8×8 tile, so even when the whole
/// footprint exceeds L1 the static side must keep the kernel on the L1
/// knee — and agree with the simulator.
#[test]
fn dgemm_tiled_agrees_beyond_l1_capacity() {
    let row = roofval::dgemm_tiled_roof(64, 1);
    assert!(row.data_bytes_exact(), "{row:?}");
    assert!(row.footprint_lines * 64 > 32 * 1024, "beyond L1: {row:?}");
    assert_eq!(row.static_p.binding, Ceiling::Mem(MemLevel::L1), "{}", row.static_p);
    assert!(row.agrees(), "static {} vs dynamic {}", row.static_p, row.dynamic_p);
}

/// Blocked triad with the repetition loop inside each block: every
/// block is cache-resident while hot, so the boundary traffic is
/// compulsory-only and must *not* scale with reps. The old model's
/// sweep bound overestimated the DRAM ceiling by the full rep count.
#[test]
fn triad_blocked_reps_amortize_boundary_traffic() {
    let (n, reps) = (8192i64, 4i64);
    let row = roofval::triad_blocked_roof(n, reps);
    assert!(row.data_bytes_exact(), "{row:?}");
    assert!(row.agrees(), "static {} vs dynamic {}", row.static_p, row.dynamic_p);
    // the sweep model would charge every rep at the deepest boundary
    let analysis = mira_core::analyze_source(
        roofval::TRIAD_BLOCKED_SRC,
        &mira_core::MiraOptions::default(),
    )
    .unwrap();
    let kernel = KernelRoofline::analyze(&analysis, "triad_blocked").unwrap();
    let c = Ceilings::from_arch(&analysis.arch);
    let b = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let sweep = kernel
        .streaming_cycles_expr(&c, MemLevel::Dram)
        .eval(&b)
        .unwrap()
        .to_f64();
    assert!(
        row.static_p.mem_cycles[2] * 2.0 < sweep,
        "reps no longer amortized: working-set bound {} vs sweep {}",
        row.static_p.mem_cycles[2],
        sweep
    );
    // and the bound stays honest: never below what the simulator saw
    assert!(row.static_p.mem_cycles[2] >= row.dynamic_p.mem_cycles[2]);
}

/// miniFE `cg_solve` no longer takes the fits-or-streams fallback: the
/// composed-callee splice plus the gather bound give it a per-nest
/// model, its placement bounds match the simulator bit-for-bit in the
/// sharp regimes, and the L2-boundary bound is strictly tighter than
/// the old streaming sweep. Written to fail against the old fallback
/// twice over: `nest_model` was `None` for composed callees, and the
/// L2 bound *equaled* the streaming sweep.
#[test]
fn minife_cg_solve_places_per_nest() {
    let minife = mira_workloads::minife::MiniFe::new();
    let kernel = KernelRoofline::analyze(&minife.analysis, "cg_solve").expect("analyzes");
    assert!(
        kernel.nest_model.is_some(),
        "cg_solve fell back to the fits-or-streams sweep"
    );

    // d=5: the whole solve is L1-resident — compulsory traffic at every
    // level, and the static footprint is exact, so the static and
    // simulated L2/DRAM bounds are bit-equal
    let row = roofval::minife_roof(5, 500, 1e-8);
    assert!(row.data_bytes_exact(), "{row:?}");
    assert_eq!(row.static_p.mem_cycles[1], row.dynamic_p.mem_cycles[1], "{row:?}");
    assert_eq!(row.static_p.mem_cycles[2], row.dynamic_p.mem_cycles[2], "{row:?}");
    assert!(row.agrees(), "static {} vs dynamic {}", row.static_p, row.dynamic_p);

    // d=8: the footprint sits between L1 and L2. The DRAM-boundary
    // bound is the exact resident count — bit-equal with the simulator —
    // while the L2-boundary bound comes from the per-nest model: an
    // honest upper bound on the measured traffic, strictly below the
    // old streaming sweep (which charged every byte of all 19
    // iterations across the boundary)
    let row = roofval::minife_roof(8, 500, 1e-8);
    assert!(row.data_bytes_exact(), "{row:?}");
    assert!(
        row.footprint_lines * 64 > 32 * 1024,
        "footprint no longer exceeds L1 — the regime moved: {row:?}"
    );
    assert_eq!(row.static_p.mem_cycles[2], row.dynamic_p.mem_cycles[2], "{row:?}");
    assert!(
        row.static_p.mem_cycles[1] >= row.dynamic_p.mem_cycles[1],
        "L2 bound dipped below the measurement: {row:?}"
    );
    let binds = bindings(&[
        ("n", 512),
        ("nnz_row_milli", mira_workloads::minife::MiniFe::nnz_row_milli(8, 8, 8) as i128),
        ("cg_iters", 19),
    ]);
    let c = Ceilings::from_arch(&minife.analysis.arch);
    let sweep = kernel
        .streaming_cycles_expr(&c, MemLevel::L2)
        .eval(&binds)
        .unwrap()
        .to_f64();
    assert!(
        row.static_p.mem_cycles[1] * 1.5 < sweep,
        "per-nest L2 bound {} is no tighter than the old sweep {}",
        row.static_p.mem_cycles[1],
        sweep
    );
}
