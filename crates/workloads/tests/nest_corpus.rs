//! Generated differential corpus for the per-nest working-set model.
//!
//! Random affine loop nests are emitted as MiniC source, pushed through
//! the full `mira-minic` → `mira-vcc` pipeline, and executed in the VM
//! with the cache simulator on a small fully-associative hierarchy. For
//! every case the static per-nest working-set model
//! (`mira_mem::NestModel`) must predict the simulator's cold-cache
//! *data* fill and write-back counts **exactly, level by level** — L1
//! and L2 fills, L1 and L2 write-backs.
//!
//! Full associativity makes the capacity model's regimes sharp (no
//! conflict misses), and a capacity-margin guard skips cases whose
//! working sets land too close to a boundary (where stack-line
//! pollution or first-iteration pinning could tip the regime); the
//! suite requires that at least 256 of the generated nests are
//! assertable. Mismatches shrink to a minimal failing shape via the
//! proptest runner.

use mira_arch::{ArchDescription, CacheLevel};
use mira_core::{analyze_source, MiraOptions};
use mira_sym::Bindings;
use mira_vm::{HostVal, Vm, VmOptions};
use proptest::test_runner::ProptestConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

const LINE: u32 = 64;
const L1_BYTES: u32 = 8 * 1024; // 128 lines
const L2_BYTES: u32 = 64 * 1024; // 1024 lines

/// The corpus machine: tiny caches so small nests hit every regime, and
/// full associativity (one set) so the working-set capacity model is
/// exact — no conflict misses.
fn corpus_arch() -> ArchDescription {
    let mut arch = ArchDescription::default();
    arch.machine.l1 = CacheLevel {
        size_bytes: L1_BYTES,
        assoc: L1_BYTES / LINE,
    };
    arch.machine.l2 = CacheLevel {
        size_bytes: L2_BYTES,
        assoc: L2_BYTES / LINE,
    };
    arch
}

/// One generated nest: source, integer arguments (in parameter order,
/// doubling as model bindings), and the element count of each pointer
/// argument (in parameter order, after the ints).
struct Case {
    src: String,
    ints: Vec<(&'static str, i64)>,
    arrays: Vec<usize>,
}

fn build_case(template: usize, sa: usize, sb: usize, reps: i64) -> Case {
    match template {
        // three streaming arrays under a repetition loop
        0 => {
            let n = [64i64, 1024, 8192][sa];
            Case {
                src: "void kernel(int n, int reps, double* a, double* b, double* c) {\n\
                      for (int r = 0; r < reps; r++) {\n\
                        for (int i = 0; i < n; i++) {\n\
                          a[i] = b[i] + 1.5 * c[i];\n\
                        } } }"
                    .to_string(),
                ints: vec![("n", n), ("reps", reps)],
                arrays: vec![n as usize; 3],
            }
        }
        // constant-offset stencil: load and store share lines
        1 => {
            let n = [128i64, 2048, 16384][sa];
            Case {
                src: "void kernel(int n, int reps, double* a) {\n\
                      for (int r = 0; r < reps; r++) {\n\
                        for (int i = 0; i < n - 1; i++) {\n\
                          a[i] = a[i + 1] * 0.5 + 1.0;\n\
                        } } }"
                    .to_string(),
                ints: vec![("n", n), ("reps", reps)],
                arrays: vec![n as usize],
            }
        }
        // matrix sweep with a vector reused across rows: v's reuse is
        // carried by the i loop and must not be multiplied by reps once
        // the per-row working set fits
        2 => {
            let m = [16i64, 48, 128][sa];
            let k = [16i64, 64, 128][sb];
            Case {
                src: "void kernel(int m, int k, int reps, double* x, double* v, double* y) {\n\
                      for (int r = 0; r < reps; r++) {\n\
                        for (int i = 0; i < m; i++) {\n\
                          for (int j = 0; j < k; j++) {\n\
                            y[i] = y[i] + x[i * k + j] * v[j];\n\
                          } } } }"
                    .to_string(),
                ints: vec![("m", m), ("k", k), ("reps", reps)],
                arrays: vec![(m * k) as usize, k as usize, m as usize],
            }
        }
        // ikj DGEMM — the ROADMAP's blocked-reuse shape, n=40 included
        3 => {
            let n = [8i64, 12, 40][sa];
            Case {
                src: "void kernel(int n, double* a, double* b, double* c) {\n\
                      for (int i = 0; i < n; i++) {\n\
                        for (int k = 0; k < n; k++) {\n\
                          for (int j = 0; j < n; j++) {\n\
                            c[i * n + j] += a[i * n + k] * b[k * n + j];\n\
                          } } } }"
                    .to_string(),
                ints: vec![("n", n)],
                arrays: vec![(n * n) as usize; 3],
            }
        }
        // two sequential nests re-touching the same arrays
        _ => {
            let n = [64i64, 1024, 8192][sa];
            Case {
                src: "void kernel(int n, int reps, double* a, double* b) {\n\
                      for (int r = 0; r < reps; r++) {\n\
                        for (int i = 0; i < n; i++) {\n\
                          a[i] = b[i];\n\
                        }\n\
                        for (int i = 0; i < n; i++) {\n\
                          b[i] = a[i] * 2.0;\n\
                        } } }"
                    .to_string(),
                ints: vec![("n", n), ("reps", reps)],
                arrays: vec![n as usize; 2],
            }
        }
    }
}

/// Statically predict, run, compare — or return without asserting when
/// the case sits too close to a capacity boundary.
fn check_case(case: &Case, asserted: &AtomicUsize) {
    let arch = corpus_arch();
    let opts = MiraOptions {
        arch: arch.clone(),
        ..MiraOptions::default()
    };
    let analysis = analyze_source(&case.src, &opts).expect("corpus case analyzes");
    let access = mira_mem::analyze_program(&analysis.program);
    let fp = access.footprint("kernel");
    let nm = access
        .nest_model("kernel", LINE)
        .expect("generated nests are fully attributable");
    assert!(nm.exact(), "generated nests are dense affine: {}", case.src);

    let b: Bindings = case
        .ints
        .iter()
        .map(|(k, v)| (k.to_string(), *v as i128))
        .collect();
    let footprint = fp.total_lines_expr(LINE).eval_count(&b).unwrap();
    let stored: i128 = fp
        .arrays
        .iter()
        .filter(|a| a.stored)
        .map(|a| a.lines_expr(LINE).eval_count(&b).unwrap())
        .sum();

    // capacity-margin guard: every per-node working set and the whole
    // footprint must sit clearly on one side of both capacities
    // (≤ 2/3·C or ≥ 3/2·C)
    let mut wss: Vec<i128> = nm
        .nodes
        .iter()
        .map(|n| n.ws_lines.eval_count(&b).unwrap())
        .collect();
    wss.push(footprint);
    let safe = |cap_lines: i128| {
        wss.iter()
            .all(|w| w * 3 <= cap_lines * 2 || w * 2 >= cap_lines * 3)
    };
    if !safe((L1_BYTES / LINE) as i128) || !safe((L2_BYTES / LINE) as i128) {
        return;
    }

    // dynamic side: cold cache, flush at the end so every dirty line is
    // on the books
    let mem_size = case.arrays.iter().sum::<usize>() * 8 + (4 << 20);
    let mut vm = Vm::load(
        &analysis.object,
        VmOptions {
            mem_size,
            mem_profile: Some(arch.cache_hierarchy()),
            ..VmOptions::default()
        },
    )
    .expect("vm loads");
    let mut args: Vec<HostVal> = case.ints.iter().map(|(_, v)| HostVal::Int(*v)).collect();
    for n in &case.arrays {
        args.push(HostVal::Int(vm.alloc_f64(&vec![1.0; *n]) as i64));
    }
    vm.call("kernel", &args).expect("kernel runs");
    vm.flush_mem();
    let stats = vm.mem_stats().expect("profiling on");

    let predict = |cap_bytes: u32| -> (i128, i128) {
        if footprint * LINE as i128 <= cap_bytes as i128 {
            (footprint, stored) // fully resident: compulsory only
        } else {
            let t = nm.boundary_traffic(cap_bytes as u64, &b).unwrap();
            (t.fill_lines, t.writeback_lines)
        }
    };
    let (f1, w1) = predict(L1_BYTES);
    assert_eq!(f1, stats.data_l1_fills as i128, "L1 fills\n{}", case.src);
    assert_eq!(
        w1, stats.data_l1_writebacks as i128,
        "L1 write-backs\n{}",
        case.src
    );
    let (f2, w2) = predict(L2_BYTES);
    assert_eq!(f2, stats.data_l2_fills as i128, "L2 fills\n{}", case.src);
    assert_eq!(
        w2, stats.data_l2_writebacks as i128,
        "L2 write-backs\n{}",
        case.src
    );
    asserted.fetch_add(1, Ordering::Relaxed);
}

#[test]
fn generated_nests_match_simulated_fill_counts() {
    let asserted = AtomicUsize::new(0);
    proptest::run_cases(
        "generated_nests_match_simulated_fill_counts",
        &ProptestConfig::with_cases(384),
        (0usize..5, 0usize..3, 0usize..3, 1i64..4),
        |(template, sa, sb, reps)| check_case(&build_case(template, sa, sb, reps), &asserted),
    );
    let n = asserted.load(Ordering::Relaxed);
    assert!(
        n >= 256,
        "only {n} of 384 generated nests were assertable — the corpus lost coverage"
    );
}

/// One generated triangular or call-composed nest — the two shapes the
/// model refused before the average-extent and splice lifts.
fn build_lifted_case(template: usize, sa: usize, sb: usize, reps: i64) -> Case {
    match template {
        // triangular repetition: the body re-sweeps both arrays once per
        // (i, r) pair, i·(i+1)/2 sweeps in total — the average-extent
        // product must recover that count exactly
        0 => {
            let n = [64i64, 1024, 8192][sa];
            let m = [3i64, 5, 8][sb];
            Case {
                src: "void kernel(int m, int n, double* a, double* b) {\n\
                      for (int i = 0; i < m; i++) {\n\
                        for (int r = 0; r < i + 1; r++) {\n\
                          for (int j = 0; j < n; j++) {\n\
                            a[j] = a[j] + b[j] * 0.5;\n\
                          } } } }"
                    .to_string(),
                ints: vec![("m", m), ("n", n)],
                arrays: vec![n as usize; 2],
            }
        }
        // triangular prefix access: the inner bound rides the outer
        // induction variable and the reference moves with it; sizes keep
        // the prefix resident, where the hi-pinned ladder is exact
        1 => {
            let m = [16i64, 48, 96][sa];
            Case {
                src: "void kernel(int m, int reps, double* x, double* y) {\n\
                      for (int r = 0; r < reps; r++) {\n\
                        for (int i = 0; i < m; i++) {\n\
                          for (int j = 0; j < i + 1; j++) {\n\
                            y[i] = y[i] + x[j];\n\
                          } } } }"
                    .to_string(),
                ints: vec![("m", m), ("reps", reps)],
                arrays: vec![m as usize; 2],
            }
        }
        // one level of composition: the repetition loop multiplies the
        // callee's spliced sweep when uncaptured
        2 => {
            let n = [64i64, 1024, 8192][sa];
            Case {
                src: "void scale_add(int n, double* dst, double* src) {\n\
                      for (int i = 0; i < n; i++) { dst[i] = dst[i] + src[i] * 2.0; }\n\
                      }\n\
                      void kernel(int n, int reps, double* a, double* b) {\n\
                        for (int r = 0; r < reps; r++) { scale_add(n, a, b); } }"
                    .to_string(),
                ints: vec![("n", n), ("reps", reps)],
                arrays: vec![n as usize; 2],
            }
        }
        // two levels of composition, formals crossing at each hop: the
        // sequential-nest re-touch shape (corpus template 4), spliced
        3 => {
            let n = [64i64, 1024, 8192][sa];
            Case {
                src: "void leaf(int n, double* p, double* q) {\n\
                      for (int i = 0; i < n; i++) { p[i] = q[i] * 0.5; }\n\
                      }\n\
                      void mid(int n, double* u, double* v) { leaf(n, u, v); leaf(n, v, u); }\n\
                      void kernel(int n, int reps, double* a, double* b) {\n\
                        for (int r = 0; r < reps; r++) { mid(n, a, b); } }"
                    .to_string(),
                ints: vec![("n", n), ("reps", reps)],
                arrays: vec![n as usize; 2],
            }
        }
        // triangular × composed: a callee sweep under a dependent bound
        _ => {
            let n = [64i64, 1024, 8192][sa];
            let m = [3i64, 5, 8][sb];
            Case {
                src: "void axpy1(int n, double* p, double* q) {\n\
                      for (int k = 0; k < n; k++) { p[k] = p[k] + q[k]; }\n\
                      }\n\
                      void kernel(int m, int n, double* a, double* b) {\n\
                        for (int i = 0; i < m; i++) {\n\
                          for (int r = 0; r < i + 1; r++) { axpy1(n, a, b); } } }"
                    .to_string(),
                ints: vec![("m", m), ("n", n)],
                arrays: vec![n as usize; 2],
            }
        }
    }
}

#[test]
fn generated_triangular_and_composed_nests_match_simulated_fill_counts() {
    let asserted = AtomicUsize::new(0);
    proptest::run_cases(
        "generated_triangular_and_composed_nests_match_simulated_fill_counts",
        &ProptestConfig::with_cases(384),
        (0usize..5, 0usize..3, 0usize..3, 1i64..4),
        |(template, sa, sb, reps)| check_case(&build_lifted_case(template, sa, sb, reps), &asserted),
    );
    let n = asserted.load(Ordering::Relaxed);
    assert!(
        n >= 256,
        "only {n} of 384 triangular/composed nests were assertable — the corpus lost coverage"
    );
}
