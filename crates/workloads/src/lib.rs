//! # mira-workloads — the paper's evaluation workloads in MiniC
//!
//! STREAM (§IV-B), DGEMM (§IV-B) and the miniFE mini-application (§IV-C),
//! rewritten in MiniC, together with the harnesses that run them both ways:
//!
//! * **statically** — Mira analyzes the source + compiled binary and
//!   evaluates the parametric model (no execution of the kernels), and
//! * **dynamically** — the instrumented VM executes the same binary and
//!   reports inclusive per-function counts (the TAU/PAPI stand-in).
//!
//! Each harness returns `(static FPI, dynamic FPI)` pairs from which the
//! Table III–V reproduction binaries compute the error columns, plus a
//! [`corpus`] of ten small applications standing in for the Table-I loop
//! coverage survey.

pub mod compose;
pub mod corpus;
pub mod dgemm;
pub mod memval;
pub mod minife;
pub mod roofval;
pub mod stream;

use mira_arch::ArchDescription;

/// One validation row: a workload configuration measured both ways.
#[derive(Clone, Debug)]
pub struct ValidationRow {
    pub label: String,
    pub function: String,
    pub dynamic_fpi: i128,
    pub static_fpi: i128,
}

impl ValidationRow {
    /// Relative error of the static estimate versus the dynamic
    /// measurement, in percent (the paper's error column).
    pub fn error_pct(&self) -> f64 {
        if self.dynamic_fpi == 0 {
            return 0.0;
        }
        100.0 * (self.dynamic_fpi - self.static_fpi).abs() as f64 / self.dynamic_fpi as f64
    }
}

/// Shared helper: default architecture description used by all harnesses.
pub fn arch() -> ArchDescription {
    ArchDescription::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_pct() {
        let r = ValidationRow {
            label: "t".to_string(),
            function: "f".to_string(),
            dynamic_fpi: 1000,
            static_fpi: 990,
        };
        assert!((r.error_pct() - 1.0).abs() < 1e-12);
        let z = ValidationRow {
            dynamic_fpi: 0,
            ..r
        };
        assert_eq!(z.error_pct(), 0.0);
    }
}
