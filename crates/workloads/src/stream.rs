//! STREAM (McCalpin) in MiniC: copy / scale / add / triad kernels, repeated
//! `reps` times, plus the validation pass real STREAM performs at the end.
//! FPI per repetition is `4·n` (scale 1, add 1, triad 2 per element) — the
//! scalar shape behind the paper's Table III counts.

use crate::ValidationRow;
use mira_core::{analyze_source, Analysis, MiraOptions};
use mira_sym::bindings;
use mira_vm::{HostVal, Vm, VmOptions};

/// STREAM in MiniC. The final validation calls the external `sqrt` — code
/// the dynamic measurement sees but static analysis cannot (paper §IV-D1).
pub const STREAM_SRC: &str = r#"extern double sqrt(double);
extern double fabs(double);

void stream_kernels(int n, int reps, double* a, double* b, double* c, double scalar) {
    for (int r = 0; r < reps; r++) {
        for (int i = 0; i < n; i++) {
            c[i] = a[i];
        }
        for (int i = 0; i < n; i++) {
            b[i] = scalar * c[i];
        }
        for (int i = 0; i < n; i++) {
            c[i] = a[i] + b[i];
        }
        for (int i = 0; i < n; i++) {
            a[i] = b[i] + scalar * c[i];
        }
    }
}

double stream_validate(int n, double* a, double* b, double* c, double expa, double expb, double expc) {
    double erra = 0.0;
    double errb = 0.0;
    double errc = 0.0;
    for (int i = 0; i < n; i++) {
        erra = erra + fabs(a[i] - expa);
    }
    for (int i = 0; i < n; i++) {
        errb = errb + fabs(b[i] - expb);
    }
    for (int i = 0; i < n; i++) {
        errc = errc + fabs(c[i] - expc);
    }
    return sqrt(erra * erra + errb * errb + errc * errc);
}

double stream_bench(int n, int reps, double* a, double* b, double* c, double scalar) {
    stream_kernels(n, reps, a, b, c, scalar);
    return stream_validate(n, a, b, c, 1.0, 1.0, 1.0);
}
"#;

/// The STREAM harness: one analysis, many problem sizes.
pub struct Stream {
    pub analysis: Analysis,
}

impl Default for Stream {
    fn default() -> Self {
        Stream::new()
    }
}

impl Stream {
    pub fn new() -> Stream {
        let analysis =
            analyze_source(STREAM_SRC, &MiraOptions::default()).expect("STREAM analyzes");
        Stream { analysis }
    }

    /// With vectorization enabled (for the PBound comparison).
    pub fn vectorized() -> Stream {
        Stream::with_compiler(mira_vcc::Options::vectorized())
    }

    /// With explicit compiler options (e.g.
    /// `mira_vcc::Options::spill_everything()` for the no-regalloc
    /// baseline `bench_vm` compares step counts against).
    pub fn with_compiler(compiler: mira_vcc::Options) -> Stream {
        let opts = MiraOptions {
            compiler,
            ..MiraOptions::default()
        };
        let analysis = analyze_source(STREAM_SRC, &opts).expect("STREAM analyzes");
        Stream { analysis }
    }

    /// Static (model) FPI for `stream_bench` at the given size.
    pub fn static_fpi(&self, n: i64, reps: i64) -> i128 {
        let b = bindings(&[("n", n as i128), ("reps", reps as i128)]);
        self.analysis
            .report("stream_bench", &b)
            .expect("model evaluates")
            .fpi(&self.analysis.arch)
    }

    /// Dynamic (instrumented execution) FPI for `stream_bench`.
    pub fn dynamic_fpi(&self, n: i64, reps: i64) -> i128 {
        let mem = (3 * n as usize * 8 + (64 << 20)).max(64 << 20);
        let mut vm = Vm::load(
            &self.analysis.object,
            VmOptions {
                mem_size: mem,
                ..VmOptions::default()
            },
        )
        .expect("vm loads");
        let a = vm.alloc_f64(&vec![1.0; n as usize]);
        let b = vm.alloc_f64(&vec![2.0; n as usize]);
        let c = vm.alloc_f64(&vec![0.0; n as usize]);
        vm.call(
            "stream_bench",
            &[
                HostVal::Int(n),
                HostVal::Int(reps),
                HostVal::Int(a as i64),
                HostVal::Int(b as i64),
                HostVal::Int(c as i64),
                HostVal::Fp(3.0),
            ],
        )
        .expect("stream runs");
        vm.profile().fpi("stream_bench", &self.analysis.arch)
    }

    /// A Table-III style validation row.
    pub fn row(&self, n: i64, reps: i64) -> ValidationRow {
        ValidationRow {
            label: format!("{n}"),
            function: "stream_bench".to_string(),
            dynamic_fpi: self.dynamic_fpi(n, reps),
            static_fpi: self.static_fpi(n, reps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_static_matches_kernel_formula() {
        let s = Stream::new();
        // kernels: 4n FPI per rep; validation: per element one subtract and
        // one accumulate (fabs is an andpd-based library call: 0 FPI) over
        // three arrays → 6n, plus 5 FPI in the final expression (3 muls +
        // 2 adds); sqrt is external (not in the static count).
        let n = 1000i64;
        let reps = 10i64;
        let static_fpi = s.static_fpi(n, reps);
        assert_eq!(static_fpi as i64, 4 * n * reps + 6 * n + 5);
    }

    #[test]
    fn stream_error_below_paper_threshold() {
        let s = Stream::new();
        let row = s.row(2000, 3);
        // dynamic exceeds static only by the hidden libm work
        assert!(row.dynamic_fpi >= row.static_fpi);
        assert!(row.error_pct() < 0.5, "error {}%", row.error_pct());
    }
}
