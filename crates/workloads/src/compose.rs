//! The workloads behind the lifted refusals: a dense forward
//! triangular solve and a two-kernel ping-pong stencil sweep — the two
//! shapes the per-nest working-set model used to refuse wholesale
//! (dependent loop bounds, callee composition) and now places.
//! [`crate::roofval`] carries their static-vs-simulated harnesses;
//! `bench_roofline` records their trajectory rows under the `--check`
//! regression gate.

/// Dense forward substitution `L x = b` on a row-major lower-triangular
/// matrix: the canonical triangular nest. The inner trip count grows
/// with `i`, so the model's average-extent lift prices the `L` row
/// sweep at half a row — where the old rectangular ladder refused and
/// fell back to the whole-footprint sweep.
pub const TRISOLVE_SRC: &str = r#"void trisolve(int n, double* l, double* b, double* x) {
    for (int i = 0; i < n; i++) {
        double s = b[i];
        for (int j = 0; j < i; j++) {
            s = s - l[i * n + j] * x[j];
        }
        x[i] = s / l[i * n + i];
    }
}
"#;

/// Two-kernel composed stencil sweep: every step blurs `u` into `v` and
/// `v` back into `u` through the *same* callee with swapped actuals.
/// The callee-splice lift must map `src`/`dst` to opposite caller
/// arrays per call site — the formal→actual substitution the composed
/// corpus pins — so the sweep places per-nest like inlined code.
pub const STENCIL_SWEEP_SRC: &str = r#"void blur(int n, double* src, double* dst) {
    for (int i = 1; i < n - 1; i++) {
        dst[i] = 0.25 * src[i - 1] + 0.5 * src[i] + 0.25 * src[i + 1];
    }
}
void stencil_sweep(int n, int steps, double* u, double* v) {
    for (int t = 0; t < steps; t++) {
        blur(n, u, v);
        blur(n, v, u);
    }
}
"#;
