//! DGEMM (HPCC) in MiniC: `C += A·B` in ikj order, repeated, plus a
//! checksum pass over the diagonal — `2·reps·n³` FPI, the cubic shape of
//! the paper's Table IV.

use crate::ValidationRow;
use mira_core::{analyze_source, Analysis, MiraOptions};
use mira_sym::bindings;
use mira_vm::{HostVal, Vm, VmOptions};

pub const DGEMM_SRC: &str = r#"extern double sqrt(double);

void dgemm(int n, int reps, double* a, double* b, double* c) {
    for (int r = 0; r < reps; r++) {
        for (int i = 0; i < n; i++) {
            for (int k = 0; k < n; k++) {
                for (int j = 0; j < n; j++) {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
    }
}

double dgemm_checksum(int n, double* c) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += c[i * n + i];
    }
    return sqrt(s * s);
}

double dgemm_bench(int n, int reps, double* a, double* b, double* c) {
    dgemm(n, reps, a, b, c);
    return dgemm_checksum(n, c);
}
"#;

pub struct Dgemm {
    pub analysis: Analysis,
}

impl Default for Dgemm {
    fn default() -> Self {
        Dgemm::new()
    }
}

impl Dgemm {
    pub fn new() -> Dgemm {
        Dgemm::with_compiler(mira_vcc::Options::default())
    }

    /// With explicit compiler options (e.g. the spill-everything
    /// baseline).
    pub fn with_compiler(compiler: mira_vcc::Options) -> Dgemm {
        let opts = MiraOptions {
            compiler,
            ..MiraOptions::default()
        };
        let analysis = analyze_source(DGEMM_SRC, &opts).expect("DGEMM analyzes");
        Dgemm { analysis }
    }

    pub fn static_fpi(&self, n: i64, reps: i64) -> i128 {
        let b = bindings(&[("n", n as i128), ("reps", reps as i128)]);
        self.analysis
            .report("dgemm_bench", &b)
            .expect("model evaluates")
            .fpi(&self.analysis.arch)
    }

    pub fn dynamic_fpi(&self, n: i64, reps: i64) -> i128 {
        let mem = (3 * (n * n) as usize * 8 + (64 << 20)).max(64 << 20);
        let mut vm = Vm::load(
            &self.analysis.object,
            VmOptions {
                mem_size: mem,
                ..VmOptions::default()
            },
        )
        .expect("vm loads");
        let nn = (n * n) as usize;
        let a = vm.alloc_f64(&vec![0.5; nn]);
        let b = vm.alloc_f64(&vec![0.25; nn]);
        let c = vm.alloc_f64(&vec![0.0; nn]);
        vm.call(
            "dgemm_bench",
            &[
                HostVal::Int(n),
                HostVal::Int(reps),
                HostVal::Int(a as i64),
                HostVal::Int(b as i64),
                HostVal::Int(c as i64),
            ],
        )
        .expect("dgemm runs");
        vm.profile().fpi("dgemm_bench", &self.analysis.arch)
    }

    pub fn row(&self, n: i64, reps: i64) -> ValidationRow {
        ValidationRow {
            label: format!("{n}"),
            function: "dgemm_bench".to_string(),
            dynamic_fpi: self.dynamic_fpi(n, reps),
            static_fpi: self.static_fpi(n, reps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_static_is_cubic() {
        let d = Dgemm::new();
        // kernel 2·reps·n³ + checksum (n adds + 1 mul)
        assert_eq!(d.static_fpi(16, 2), 2 * 2 * 16 * 16 * 16 + 16 + 1);
    }

    #[test]
    fn dgemm_error_tiny() {
        let d = Dgemm::new();
        let row = d.row(24, 1);
        assert!(row.dynamic_fpi >= row.static_fpi);
        assert!(row.error_pct() < 0.1, "error {}%", row.error_pct());
    }

    #[test]
    fn dgemm_computes_correct_product() {
        let d = Dgemm::new();
        let n = 8i64;
        let mut vm = Vm::new(&d.analysis.object).unwrap();
        let nn = (n * n) as usize;
        let a = vm.alloc_f64(&vec![1.0; nn]);
        let b = vm.alloc_f64(&vec![2.0; nn]);
        let c = vm.alloc_f64(&vec![0.0; nn]);
        vm.call(
            "dgemm",
            &[
                HostVal::Int(n),
                HostVal::Int(1),
                HostVal::Int(a as i64),
                HostVal::Int(b as i64),
                HostVal::Int(c as i64),
            ],
        )
        .unwrap();
        let out = vm.read_f64(c, nn);
        // all-ones × all-twos: every element = 2n
        for v in out {
            assert!((v - (2 * n) as f64).abs() < 1e-9);
        }
    }
}
