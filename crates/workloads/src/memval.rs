//! Memory-traffic validation: the static `mira-mem` models against the
//! VM cache simulator, workload by workload.
//!
//! Each harness runs a kernel twice over the same inputs — *statically*
//! (evaluating the closed-form byte/FLOP model and the distinct-line
//! footprints) and *dynamically* (executing it in the VM with
//! `VmOptions::mem_profile` on) — and returns one [`MemRow`] with both
//! sides. On the affine subset the bytes agree **exactly** (same
//! accounting contract, same instruction counts), and for streaming
//! kernels sized to stay L1-resident the static distinct-line totals
//! equal the simulator's cold-cache *data* L1 fills exactly as well;
//! reuse-heavy kernels with data-dependent accesses (miniFE's CSR) carry
//! an annotation-style estimate and a stated tolerance instead, mirroring
//! the paper's treatment of everything static analysis cannot see.

use crate::dgemm::Dgemm;
use crate::minife::MiniFe;
use crate::stream::Stream;
use mira_core::{analyze_source, Analysis, MiraOptions};
use mira_mem::MemStats;
use mira_sym::{bindings, Bindings};
use mira_vm::{HostVal, Vm, VmOptions};

/// The STREAM triad alone — the kernel the paper's roofline argument
/// leans on (`a[i] = b[i] + s*c[i]`).
pub const TRIAD_SRC: &str = r#"void triad(int n, int reps, double* a, double* b, double* c, double scalar) {
    for (int r = 0; r < reps; r++) {
        for (int i = 0; i < n; i++) {
            a[i] = b[i] + scalar * c[i];
        }
    }
}
"#;

/// One static-vs-dynamic memory validation row.
#[derive(Clone, Debug)]
pub struct MemRow {
    pub workload: String,
    pub function: String,
    /// Static closed-form predictions evaluated at the run's parameters.
    pub static_load_bytes: i128,
    pub static_store_bytes: i128,
    pub static_flops: i128,
    /// Static distinct-cache-line prediction (analyzed arrays plus any
    /// harness-side estimates for data-dependent ones).
    pub static_lines: i128,
    /// All contributing footprints were provably dense and affine.
    pub lines_exact: bool,
    /// The simulator's counters for the same run.
    pub dynamic: MemStats,
    /// Static bytes-based arithmetic intensity (FLOPs/byte).
    pub bytes_ai: f64,
}

impl MemRow {
    /// Do static and dynamic load/store bytes agree exactly?
    pub fn bytes_exact(&self) -> bool {
        self.static_load_bytes == self.dynamic.load_bytes as i128
            && self.static_store_bytes == self.dynamic.store_bytes as i128
    }

    /// Relative error of the distinct-line prediction versus the
    /// simulated cold-cache data L1 fills, in percent. Zero simulated
    /// fills against a nonzero prediction is a total disagreement
    /// (`+∞`), not a perfect score.
    pub fn lines_error_pct(&self) -> f64 {
        let dynamic = self.dynamic.data_l1_fills as f64;
        if dynamic == 0.0 {
            return if self.static_lines == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        100.0 * (dynamic - self.static_lines as f64).abs() / dynamic
    }
}

pub(crate) fn vm_for(analysis: &Analysis, mem_size: usize, profile: bool) -> Vm {
    Vm::load(
        &analysis.object,
        VmOptions {
            mem_size,
            mem_profile: profile.then(|| analysis.arch.cache_hierarchy()),
            ..VmOptions::default()
        },
    )
    .expect("vm loads")
}

pub(crate) fn mem_vm(analysis: &Analysis, mem_size: usize) -> Vm {
    vm_for(analysis, mem_size, true)
}

pub(crate) fn stream_mem_size(n: i64) -> usize {
    (3 * n as usize * 8 + (64 << 20)).max(64 << 20)
}

/// Allocate the three STREAM-shaped arrays and build the six-argument
/// call (shared by the triad and the four-kernel harnesses, rows and
/// overhead timing alike).
pub(crate) fn stream_shape_args(vm: &mut Vm, n: i64, reps: i64) -> Vec<HostVal> {
    let a = vm.alloc_f64(&vec![1.0; n as usize]);
    let b = vm.alloc_f64(&vec![2.0; n as usize]);
    let c = vm.alloc_f64(&vec![0.0; n as usize]);
    vec![
        HostVal::Int(n),
        HostVal::Int(reps),
        HostVal::Int(a as i64),
        HostVal::Int(b as i64),
        HostVal::Int(c as i64),
        HostVal::Fp(3.0),
    ]
}

pub(crate) fn dgemm_args(vm: &mut Vm, n: i64, reps: i64) -> Vec<HostVal> {
    let nn = (n * n) as usize;
    let a = vm.alloc_f64(&vec![0.5; nn]);
    let b = vm.alloc_f64(&vec![0.25; nn]);
    let c = vm.alloc_f64(&vec![0.0; nn]);
    vec![
        HostVal::Int(n),
        HostVal::Int(reps),
        HostVal::Int(a as i64),
        HostVal::Int(b as i64),
        HostVal::Int(c as i64),
    ]
}

/// Best-of-`rounds` wall-clock ratio of an instrumented run over an
/// uninstrumented one.
fn overhead_ratio(
    rounds: usize,
    mut run: impl FnMut(bool) -> std::time::Duration,
) -> f64 {
    let mut best = |profile: bool| {
        (0..rounds.max(1))
            .map(|_| run(profile))
            .min()
            .expect("at least one round")
    };
    let off = best(false);
    best(true).as_secs_f64() / off.as_secs_f64()
}

/// Wall-clock cost of turning the cache simulator on, measured on the
/// four STREAM kernels (best of `rounds` each way).
pub fn stream_sim_overhead(n: i64, reps: i64, rounds: usize) -> f64 {
    let stream = Stream::new();
    overhead_ratio(rounds, |profile| {
        let mut vm = vm_for(&stream.analysis, stream_mem_size(n), profile);
        let args = stream_shape_args(&mut vm, n, reps);
        let t0 = std::time::Instant::now();
        vm.call("stream_kernels", &args).expect("stream runs");
        t0.elapsed()
    })
}

/// Wall-clock cost of turning the cache simulator on, measured on the
/// DGEMM kernel (best of `rounds` each way).
pub fn dgemm_sim_overhead(n: i64, rounds: usize) -> f64 {
    let dgemm = Dgemm::new();
    overhead_ratio(rounds, |profile| {
        let mut vm = vm_for(&dgemm.analysis, stream_mem_size(n * n), profile);
        let args = dgemm_args(&mut vm, n, 1);
        let t0 = std::time::Instant::now();
        vm.call("dgemm", &args).expect("dgemm runs");
        t0.elapsed()
    })
}

fn static_side(
    analysis: &Analysis,
    func: &str,
    binds: &Bindings,
) -> (i128, i128, i128, f64, i128, bool) {
    let report = analysis.report(func, binds).expect("model evaluates");
    let fp = mira_mem::footprints(analysis, func);
    let line_bytes = analysis.arch.cache_hierarchy().line_bytes;
    let lines = fp
        .total_lines_expr(line_bytes)
        .eval_count(binds)
        .expect("footprint evaluates");
    (
        report.load_bytes,
        report.store_bytes,
        report.flops,
        report.bytes_arithmetic_intensity(),
        lines,
        fp.is_exact(line_bytes),
    )
}

/// STREAM triad, scalar or vectorized (`simd`).
pub fn triad_row(n: i64, reps: i64, simd: bool) -> MemRow {
    let compiler = if simd {
        mira_vcc::Options::vectorized()
    } else {
        mira_vcc::Options::default()
    };
    let opts = MiraOptions {
        compiler,
        ..MiraOptions::default()
    };
    let analysis = analyze_source(TRIAD_SRC, &opts).expect("triad analyzes");
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let (lb, sb, fl, ai, lines, exact) = static_side(&analysis, "triad", &binds);
    let mut vm = mem_vm(&analysis, stream_mem_size(n));
    let args = stream_shape_args(&mut vm, n, reps);
    vm.call("triad", &args).expect("triad runs");
    MemRow {
        workload: if simd { "triad_simd" } else { "triad" }.to_string(),
        function: "triad".to_string(),
        static_load_bytes: lb,
        static_store_bytes: sb,
        static_flops: fl,
        static_lines: lines,
        lines_exact: exact,
        dynamic: vm.mem_stats().expect("profiling on"),
        bytes_ai: ai,
    }
}

/// All four STREAM kernels (`stream_kernels` — no external calls).
pub fn stream_row(n: i64, reps: i64) -> MemRow {
    let stream = Stream::new();
    let analysis = &stream.analysis;
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let (lb, sb, fl, ai, lines, exact) = static_side(analysis, "stream_kernels", &binds);
    let mut vm = mem_vm(analysis, stream_mem_size(n));
    let args = stream_shape_args(&mut vm, n, reps);
    vm.call("stream_kernels", &args).expect("stream runs");
    MemRow {
        workload: "stream".to_string(),
        function: "stream_kernels".to_string(),
        static_load_bytes: lb,
        static_store_bytes: sb,
        static_flops: fl,
        static_lines: lines,
        lines_exact: exact,
        dynamic: vm.mem_stats().expect("profiling on"),
        bytes_ai: ai,
    }
}

/// The DGEMM kernel (`dgemm`, ikj order — no external calls).
pub fn dgemm_row(n: i64, reps: i64) -> MemRow {
    let dgemm = Dgemm::new();
    let analysis = &dgemm.analysis;
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let (lb, sb, fl, ai, lines, exact) = static_side(analysis, "dgemm", &binds);
    let mut vm = mem_vm(analysis, stream_mem_size(n * n));
    let args = dgemm_args(&mut vm, n, reps);
    vm.call("dgemm", &args).expect("dgemm runs");
    MemRow {
        workload: "dgemm".to_string(),
        function: "dgemm".to_string(),
        static_load_bytes: lb,
        static_store_bytes: sb,
        static_flops: fl,
        static_lines: lines,
        lines_exact: exact,
        dynamic: vm.mem_stats().expect("profiling on"),
        bytes_ai: ai,
    }
}

/// miniFE `cg_solve` on a `d³` cube: assemble, reset to a cold cache,
/// solve; the static side is evaluated at the *measured* iteration count
/// (the paper's best-knowledge comparison). The two data-dependent CSR
/// arrays (`vals`, `cols`) and the gather target are covered by the
/// `lp_cumulative`/`idx_extent` annotation on the matvec inner loop, so
/// the distinct-line prediction comes entirely out of the model — no
/// harness-side estimates.
pub fn minife_row(d: i64, max_iter: i64, tol: f64) -> MemRow {
    let minife = MiniFe::new();
    let analysis = &minife.analysis;
    let n = (d * d * d) as usize;
    let mut vm = mem_vm(analysis, crate::minife::solve_mem_size(n));
    let bufs = crate::minife::SolveBuffers::alloc(&mut vm, n);
    vm.call("assemble", &bufs.assemble_args(d, d, d))
        .expect("assemble runs");
    vm.reset_counters(); // cold cache, solve-phase scope (like the paper)
    vm.call("cg_solve", &bufs.solve_args(n as i64, max_iter, tol))
        .expect("cg_solve runs");
    let iterations = vm.int_return();
    assert!(iterations < max_iter, "must converge by tolerance");

    let binds = bindings(&[
        ("n", n as i128),
        ("nnz_row_milli", MiniFe::nnz_row_milli(d, d, d) as i128),
        ("cg_iters", iterations as i128),
    ]);
    let (lb, sb, fl, ai, lines, exact) = static_side(analysis, "cg_solve", &binds);
    MemRow {
        workload: format!("minife_cg_{d}x{d}x{d}"),
        function: "cg_solve".to_string(),
        static_load_bytes: lb,
        static_store_bytes: sb,
        static_flops: fl,
        static_lines: lines,
        lines_exact: exact,
        dynamic: vm.mem_stats().expect("profiling on"),
        bytes_ai: ai,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// STREAM triad: exact bytes and exact cold-cache line fills (3
    /// arrays of 1024 doubles stay L1-resident, so reps add no fills).
    #[test]
    fn triad_bytes_and_lines_exact() {
        let row = triad_row(1024, 2, false);
        assert!(row.bytes_exact(), "{row:?}");
        assert!(row.lines_exact);
        // 3 × 1024 × 8 / 64 = 384 lines
        assert_eq!(row.static_lines, 384);
        assert_eq!(row.dynamic.data_l1_fills, 384, "{row:?}");
        // triad moves ≥ 24 bytes and does 2 FLOPs per element per rep
        assert_eq!(row.static_flops, 2 * 1024 * 2);
        assert!(row.static_load_bytes >= 2 * 1024 * 2 * 8);
        assert!(row.static_store_bytes >= 1024 * 2 * 8);
    }

    /// The SSE2-vectorized triad: packed 16-byte accesses must be counted
    /// at full width on both sides.
    #[test]
    fn triad_simd_bytes_and_lines_exact() {
        let row = triad_row(1024, 2, true);
        assert!(row.bytes_exact(), "{row:?}");
        assert_eq!(row.static_lines, 384);
        assert_eq!(row.dynamic.data_l1_fills, 384, "{row:?}");
        assert_eq!(row.static_flops, 2 * 1024 * 2, "packed lanes both count");
    }

    /// All four STREAM kernels: exact bytes, exact cold fills.
    #[test]
    fn stream_kernels_bytes_and_lines_exact() {
        let row = stream_row(1024, 2);
        assert!(row.bytes_exact(), "{row:?}");
        assert!(row.lines_exact);
        assert_eq!(row.static_lines, 384);
        assert_eq!(row.dynamic.data_l1_fills, 384, "{row:?}");
    }

    /// DGEMM at an L1-resident size: exact bytes, exact cold fills.
    #[test]
    fn dgemm_bytes_and_lines_exact() {
        let row = dgemm_row(24, 1);
        assert!(row.bytes_exact(), "{row:?}");
        assert!(row.lines_exact);
        // 3 × 24² × 8 / 64 = 216 lines
        assert_eq!(row.static_lines, 216);
        assert_eq!(row.dynamic.data_l1_fills, 216, "{row:?}");
        // ikj DGEMM reads a, b and reads+writes c every inner iteration:
        // ≥ 32 bytes per 2 FLOPs → AI ≤ 1/16
        assert!(row.bytes_ai > 0.0 && row.bytes_ai <= 1.0 / 16.0, "{row:?}");
    }

    /// miniFE cg_solve: bytes exact (the 6³ cube makes the nnz-per-row
    /// fixed-point annotation exact, and libm bodies move no explicit
    /// bytes); distinct lines within the stated tolerance of the
    /// cold-cache fills (the CSR arrays come from the `lp_cumulative`
    /// annotation; the gather bound on `x` is an estimate, not coverage).
    #[test]
    fn minife_cg_bytes_exact_lines_close() {
        let row = minife_row(6, 500, 1e-8);
        assert!(
            row.bytes_exact(),
            "static {}+{} vs dynamic {}+{}",
            row.static_load_bytes,
            row.static_store_bytes,
            row.dynamic.load_bytes,
            row.dynamic.store_bytes
        );
        assert!(!row.lines_exact, "CSR arrays are data-dependent");
        assert!(
            row.lines_error_pct() < 2.0,
            "line error {}% ({} static vs {} fills)",
            row.lines_error_pct(),
            row.static_lines,
            row.dynamic.data_l1_fills
        );
        // sanity: the solve is load-dominated and FP-light per byte
        assert!(row.dynamic.load_bytes > row.dynamic.store_bytes);
        assert!(row.bytes_ai > 0.0 && row.bytes_ai < 0.5);
    }

    /// Streaming far beyond cache capacity: bytes stay exact, and every
    /// level misses hard (the roofline regime the subsystem exists for).
    #[test]
    fn stream_capacity_misses_beyond_l2() {
        let row = stream_row(20_000, 2); // 3 × 156 KiB ≫ L1, > L2
        assert!(row.bytes_exact(), "{row:?}");
        // later kernels and the second rep must refill: far more fills
        // than the 7500-line cold footprint
        assert!(row.dynamic.l1.misses > 2 * row.static_lines as u64, "{row:?}");
        assert!(row.dynamic.l2.misses > row.static_lines as u64);
    }
}
