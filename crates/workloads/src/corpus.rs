//! The Table-I survey corpus: ten small MiniC applications standing in for
//! the SPEC/Perfect-Club codes of Bastoul et al.'s loop-coverage survey
//! (applu, apsi, mdg, lucas, mgrid, quake, swim, adm, dyfesm, mg3d). Each
//! is a condensed kernel with the *structural* property the survey
//! measures — a large majority of executable statements inside loop nests.

/// `(name, MiniC source)` for every survey application.
pub fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("applu", APPLU),
        ("apsi", APSI),
        ("mdg", MDG),
        ("lucas", LUCAS),
        ("mgrid", MGRID),
        ("quake", QUAKE),
        ("swim", SWIM),
        ("adm", ADM),
        ("dyfesm", DYFESM),
        ("mg3d", MG3D),
    ]
}

const APPLU: &str = r#"
void ssor_sweep(int n, double* u, double* rsd, double omega) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            double c = u[i * n + j];
            double lap = u[(i - 1) * n + j] + u[(i + 1) * n + j] - 4.0 * c;
            lap = lap + u[i * n + j - 1] + u[i * n + j + 1];
            rsd[i * n + j] = c + omega * lap;
        }
    }
    for (int i = 0; i < n * n; i++) {
        u[i] = rsd[i];
    }
}
"#;

const APSI: &str = r#"
void advect(int n, double* q, double* wind, double* out, double dt) {
    double cfl = 0.0;
    for (int k = 1; k < n - 1; k++) {
        double up = wind[k];
        double flux = up * (q[k] - q[k - 1]);
        out[k] = q[k] - dt * flux;
        cfl = cfl + up * dt;
    }
    for (int k = 0; k < n; k++) {
        q[k] = out[k];
        wind[k] = wind[k] * 0.99;
    }
    out[0] = q[0];
    out[n - 1] = q[n - 1];
}
"#;

const MDG: &str = r#"
void forces(int n, double* x, double* y, double* fx, double* fy) {
    for (int i = 0; i < n; i++) {
        fx[i] = 0.0;
        fy[i] = 0.0;
    }
    for (int i = 0; i < n; i++) {
        for (int j = i + 1; j < n; j++) {
            double dx = x[i] - x[j];
            double dy = y[i] - y[j];
            double r2 = dx * dx + dy * dy + 0.5;
            double f = 1.0 / r2;
            fx[i] += f * dx;
            fy[i] += f * dy;
            fx[j] -= f * dx;
            fy[j] -= f * dy;
        }
    }
}
"#;

const LUCAS: &str = r#"
double lucas_sequence(int n, double* work) {
    for (int i = 0; i < n; i++) {
        double v = work[i];
        v = v * v - 2.0;
        v = v - (double)((int)(v / 2147483647.0)) * 2147483647.0;
        work[i] = v;
    }
    double acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc += work[i];
    }
    return acc;
}
"#;

const MGRID: &str = r#"
void relax(int n, double* u, double* rhs) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            u[i * n + j] = 0.25 * (u[(i - 1) * n + j] + u[(i + 1) * n + j]
                + u[i * n + j - 1] + u[i * n + j + 1] - rhs[i * n + j]);
        }
    }
}

void restrict_grid(int n, double* fine, double* coarse) {
    int half = n / 2;
    for (int i = 0; i < half; i++) {
        for (int j = 0; j < half; j++) {
            coarse[i * half + j] = 0.25 * (fine[2 * i * n + 2 * j]
                + fine[(2 * i + 1) * n + 2 * j]
                + fine[2 * i * n + 2 * j + 1]
                + fine[(2 * i + 1) * n + 2 * j + 1]);
        }
    }
}
"#;

const QUAKE: &str = r#"
void smvp_step(int n, double* k_diag, double* disp, double* vel, double dt) {
    double energy = 0.0;
    int damped = 0;
    for (int i = 0; i < n; i++) {
        double a = k_diag[i] * disp[i];
        vel[i] = vel[i] - dt * a;
        disp[i] = disp[i] + dt * vel[i];
        if (vel[i] * vel[i] > 100.0) {
            vel[i] = vel[i] * 0.5;
            damped = damped + 1;
        }
        energy = energy + vel[i] * vel[i];
    }
    k_diag[0] = energy + (double)damped;
}
"#;

const SWIM: &str = r#"
void shallow_water(int n, double* u, double* v, double* p, double dt) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            double du = p[i * n + j + 1] - p[i * n + j - 1];
            double dv = p[(i + 1) * n + j] - p[(i - 1) * n + j];
            u[i * n + j] -= dt * du;
            v[i * n + j] -= dt * dv;
            p[i * n + j] -= dt * (du + dv);
        }
    }
}
"#;

const ADM: &str = r#"
void pollutant_diffuse(int n, int steps, double* c, double* work, double kappa) {
    for (int s = 0; s < steps; s++) {
        for (int i = 1; i < n - 1; i++) {
            work[i] = c[i] + kappa * (c[i - 1] - 2.0 * c[i] + c[i + 1]);
        }
        for (int i = 1; i < n - 1; i++) {
            c[i] = work[i];
        }
        c[0] = c[1];
        c[n - 1] = c[n - 2];
    }
}
"#;

const DYFESM: &str = r#"
void element_update(int nelem, double* stiff, double* disp, double* force) {
    for (int e = 0; e < nelem; e++) {
        double acc = 0.0;
        for (int k = 0; k < 8; k++) {
            acc += stiff[e * 8 + k] * disp[k];
        }
        force[e] = acc;
    }
    double total = 0.0;
    for (int e = 0; e < nelem; e++) {
        total += force[e];
    }
    force[0] = total;
}
"#;

const MG3D: &str = r#"
void migrate(int n, double* trace, double* image, double* vel) {
    for (int t = 0; t < n; t++) {
        for (int z = 0; z < n; z++) {
            double w = vel[z] * trace[t];
            image[t * n + z] += w;
        }
    }
    for (int z = 0; z < n; z++) {
        double norm = 0.0;
        for (int t = 0; t < n; t++) {
            norm += image[t * n + z] * image[t * n + z];
        }
        vel[z] = norm;
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use mira_core::coverage::survey;

    #[test]
    fn all_corpus_programs_analyze() {
        for (name, src) in corpus() {
            let p = mira_minic::frontend(src)
                .unwrap_or_else(|e| panic!("{name} fails frontend: {e}"));
            let row = survey(name, &p);
            assert!(row.loops >= 1, "{name} has no loops");
            assert!(
                row.percentage() >= 60.0,
                "{name} loop coverage only {:.0}%",
                row.percentage()
            );
        }
    }

    #[test]
    fn corpus_compiles() {
        for (name, src) in corpus() {
            mira_vcc::compile_source(src, &mira_vcc::Options::default())
                .unwrap_or_else(|e| panic!("{name} fails compile: {e}"));
        }
    }

    #[test]
    fn corpus_has_ten_apps() {
        assert_eq!(corpus().len(), 10);
    }
}
