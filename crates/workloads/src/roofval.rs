//! Roofline-placement validation: the static symbolic bounds of
//! `mira-roofline` against the cache-simulator-derived placement,
//! workload by workload.
//!
//! Each harness builds the kernel's [`KernelRoofline`] (closed-form
//! FLOPs, data bytes, footprints), places it at the run's parameters,
//! then executes the same kernel under the VM cache simulator — with a
//! final [`mira_vm::Vm::flush_mem`] so end-of-run store traffic reaches
//! the write-back counters — and places the *measured* per-boundary
//! traffic against the same ceilings. The two placements must name the
//! same binding roof: that agreement is this module's contract, pinned
//! by its tests and recorded as a trajectory by `bench_roofline`.
//!
//! On the affine subset the L1 bound agrees *exactly* (static data bytes
//! equal simulated data bytes, by the shared accounting contract); the
//! deeper bounds agree in classification, with the static side's
//! fits-or-streams traffic model standing in for simulated fills and
//! write-backs.

use crate::dgemm::Dgemm;
use crate::minife::MiniFe;
use crate::stream::Stream;
use mira_core::{analyze_source, Analysis, MiraOptions};
use mira_roofline::{dynamic_placement, Ceilings, Crossover, KernelRoofline, Placement};
use mira_sym::{bindings, Bindings};
use mira_vm::Vm;

use crate::memval::{dgemm_args, mem_vm, stream_mem_size, stream_shape_args, TRIAD_SRC};
use mira_vm::HostVal;

/// One static-vs-dynamic roofline validation row.
#[derive(Clone, Debug)]
pub struct RoofRow {
    pub workload: String,
    pub function: String,
    /// Model FLOPs at the run's parameters (validated exact against the
    /// dynamic counts by the `memval` suite — both placements share it).
    pub flops: i128,
    /// Static closed-form data bytes, evaluated.
    pub static_data_bytes: i128,
    /// Simulated data bytes (must equal the static value on the affine
    /// subset).
    pub dynamic_data_bytes: u64,
    /// Static distinct-line footprint, evaluated.
    pub footprint_lines: i128,
    pub static_p: Placement,
    pub dynamic_p: Placement,
}

impl RoofRow {
    /// Do the static and simulator-derived placements name the same
    /// bound class and binding roof?
    pub fn agrees(&self) -> bool {
        self.static_p.agrees_with(&self.dynamic_p)
    }

    /// Static data bytes == simulated data bytes, exactly.
    pub fn data_bytes_exact(&self) -> bool {
        self.static_data_bytes == self.dynamic_data_bytes as i128
    }
}

fn row(
    workload: &str,
    analysis: &Analysis,
    func: &str,
    binds: &Bindings,
    mut vm: Vm,
    run: impl FnOnce(&mut Vm),
) -> RoofRow {
    let ceilings = Ceilings::from_arch(&analysis.arch);
    let kernel = KernelRoofline::analyze(analysis, func).expect("kernel analyzes");
    let static_p = kernel.place(&ceilings, binds).expect("placement evaluates");
    let flops = kernel.flops.eval_count(binds).expect("flops evaluate");
    run(&mut vm);
    vm.flush_mem(); // end-of-run stores must reach the write-back counters
    let stats = vm.mem_stats().expect("profiling on");
    RoofRow {
        workload: workload.to_string(),
        function: func.to_string(),
        flops,
        static_data_bytes: kernel.data_bytes().eval_count(binds).expect("bytes evaluate"),
        dynamic_data_bytes: stats.data_bytes(),
        footprint_lines: kernel
            .footprint_lines
            .eval_count(binds)
            .expect("footprint evaluates"),
        static_p,
        dynamic_p: dynamic_placement(flops, &stats, &ceilings, kernel.vectorized),
    }
}

/// STREAM triad, scalar or SSE2-vectorized.
pub fn triad_roof(n: i64, reps: i64, simd: bool) -> RoofRow {
    let compiler = if simd {
        mira_vcc::Options::vectorized()
    } else {
        mira_vcc::Options::default()
    };
    let opts = MiraOptions {
        compiler,
        ..MiraOptions::default()
    };
    let analysis = analyze_source(TRIAD_SRC, &opts).expect("triad analyzes");
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let mut vm = mem_vm(&analysis, stream_mem_size(n));
    let args = stream_shape_args(&mut vm, n, reps);
    row(
        if simd { "triad_simd" } else { "triad" },
        &analysis,
        "triad",
        &binds,
        vm,
        |vm| {
            vm.call("triad", &args).expect("triad runs");
        },
    )
}

/// All four STREAM kernels.
pub fn stream_roof(n: i64, reps: i64) -> RoofRow {
    let stream = Stream::new();
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let mut vm = mem_vm(&stream.analysis, stream_mem_size(n));
    let args = stream_shape_args(&mut vm, n, reps);
    row("stream", &stream.analysis, "stream_kernels", &binds, vm, |vm| {
        vm.call("stream_kernels", &args).expect("stream runs");
    })
}

/// DGEMM (ikj order).
pub fn dgemm_roof(n: i64, reps: i64) -> RoofRow {
    let dgemm = Dgemm::new();
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let mut vm = mem_vm(&dgemm.analysis, stream_mem_size(n * n));
    let args = dgemm_args(&mut vm, n, reps);
    row("dgemm", &dgemm.analysis, "dgemm", &binds, vm, |vm| {
        vm.call("dgemm", &args).expect("dgemm runs");
    })
}

/// miniFE `cg_solve` on a `d³` cube (assembled first, counters and cache
/// reset to cold for the solve, static side at the measured iteration
/// count — the same scoping as `memval::minife_row`).
pub fn minife_roof(d: i64, max_iter: i64, tol: f64) -> RoofRow {
    let minife = MiniFe::new();
    let analysis = &minife.analysis;
    let n = (d * d * d) as usize;
    let mut vm = mem_vm(analysis, crate::minife::solve_mem_size(n));
    let bufs = crate::minife::SolveBuffers::alloc(&mut vm, n);
    vm.call("assemble", &bufs.assemble_args(d, d, d))
        .expect("assemble runs");
    vm.reset_counters();
    vm.call("cg_solve", &bufs.solve_args(n as i64, max_iter, tol))
        .expect("cg_solve runs");
    let iterations = vm.int_return();
    assert!(iterations < max_iter, "must converge by tolerance");
    let binds = bindings(&[
        ("n", n as i128),
        ("nnz_row_milli", MiniFe::nnz_row_milli(d, d, d) as i128),
        ("cg_iters", iterations as i128),
    ]);
    row(
        &format!("minife_cg_{d}x{d}x{d}"),
        analysis,
        "cg_solve",
        &binds,
        vm,
        |_| {}, // already ran — the row helper only flushes and reads
    )
}

/// Tiled (blocked) ikj DGEMM with fixed 8×8 i/k tiles — `n` must be a
/// multiple of 8. The tile turns b's whole-matrix reuse into per-tile
/// reuse: the working-set model places its traffic by the tile working
/// set, where the old fits-or-streams model saw only the too-big
/// whole-function footprint.
pub const DGEMM_TILED_SRC: &str = r#"void dgemm_tiled(int n, int reps, double* a, double* b, double* c) {
    for (int r = 0; r < reps; r++) {
        for (int ii = 0; ii < n; ii += 8) {
            for (int kk = 0; kk < n; kk += 8) {
                for (int i = ii; i < ii + 8; i++) {
                    for (int k = kk; k < kk + 8; k++) {
                        for (int j = 0; j < n; j++) {
                            c[i * n + j] += a[i * n + k] * b[k * n + j];
                        }
                    }
                }
            }
        }
    }
}
"#;

/// STREAM triad processed in 1024-element blocks with the repetition
/// loop *inside* the block — `n` must be a multiple of 1024. Each block
/// is cache-resident while it is hot, so traffic is compulsory-only even
/// when the whole footprint dwarfs every cache: the blocked shape whose
/// L2/DRAM ceilings the binary footprint test overestimated by `reps`.
pub const TRIAD_BLOCKED_SRC: &str = r#"void triad_blocked(int n, int reps, double* a, double* b, double* c, double s) {
    for (int ii = 0; ii < n; ii += 1024) {
        for (int r = 0; r < reps; r++) {
            for (int i = ii; i < ii + 1024; i++) {
                a[i] = b[i] + s * c[i];
            }
        }
    }
}
"#;

/// Tiled DGEMM (8×8 i/k tiles).
pub fn dgemm_tiled_roof(n: i64, reps: i64) -> RoofRow {
    assert_eq!(n % 8, 0, "tile size divides n");
    let analysis =
        analyze_source(DGEMM_TILED_SRC, &MiraOptions::default()).expect("tiled DGEMM analyzes");
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let mut vm = mem_vm(&analysis, stream_mem_size(n * n));
    let args = dgemm_args(&mut vm, n, reps);
    row("dgemm_tiled", &analysis, "dgemm_tiled", &binds, vm, |vm| {
        vm.call("dgemm_tiled", &args).expect("tiled dgemm runs");
    })
}

/// Blocked STREAM triad (1024-element blocks, reps inside the block).
pub fn triad_blocked_roof(n: i64, reps: i64) -> RoofRow {
    assert_eq!(n % 1024, 0, "block size divides n");
    let analysis =
        analyze_source(TRIAD_BLOCKED_SRC, &MiraOptions::default()).expect("blocked triad analyzes");
    let binds = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    let mut vm = mem_vm(&analysis, stream_mem_size(n));
    let args = stream_shape_args(&mut vm, n, reps);
    row(
        "triad_blocked",
        &analysis,
        "triad_blocked",
        &binds,
        vm,
        |vm| {
            vm.call("triad_blocked", &args).expect("blocked triad runs");
        },
    )
}

/// Dense forward triangular solve ([`crate::compose::TRISOLVE_SRC`]):
/// the triangular nest the average-extent lift admits into the per-nest
/// model. `L` is touched once (compulsory), `x` is reused across the
/// growing inner sweeps.
pub fn trisolve_roof(n: i64) -> RoofRow {
    let analysis = analyze_source(crate::compose::TRISOLVE_SRC, &MiraOptions::default())
        .expect("trisolve analyzes");
    let binds = bindings(&[("n", n as i128)]);
    let mut vm = mem_vm(&analysis, stream_mem_size(n * n));
    let l = vm.alloc_f64(&vec![1.0; (n * n) as usize]);
    let b = vm.alloc_f64(&vec![1.0; n as usize]);
    let x = vm.alloc_f64(&vec![0.0; n as usize]);
    let args = [
        HostVal::Int(n),
        HostVal::Int(l as i64),
        HostVal::Int(b as i64),
        HostVal::Int(x as i64),
    ];
    row("trisolve", &analysis, "trisolve", &binds, vm, |vm| {
        vm.call("trisolve", &args).expect("trisolve runs");
    })
}

/// Composed ping-pong stencil sweep
/// ([`crate::compose::STENCIL_SWEEP_SRC`]): `steps` alternating `blur`
/// calls spliced into the caller's step loop by the composed-callee
/// lift, with `src`/`dst` swapped between the two call sites.
pub fn stencil_sweep_roof(n: i64, steps: i64) -> RoofRow {
    let analysis = analyze_source(crate::compose::STENCIL_SWEEP_SRC, &MiraOptions::default())
        .expect("stencil sweep analyzes");
    let binds = bindings(&[("n", n as i128), ("steps", steps as i128)]);
    let mut vm = mem_vm(&analysis, stream_mem_size(n));
    let u = vm.alloc_f64(&vec![1.0; n as usize]);
    let v = vm.alloc_f64(&vec![0.0; n as usize]);
    let args = [
        HostVal::Int(n),
        HostVal::Int(steps),
        HostVal::Int(u as i64),
        HostVal::Int(v as i64),
    ];
    row(
        "stencil_sweep",
        &analysis,
        "stencil_sweep",
        &binds,
        vm,
        |vm| {
            vm.call("stencil_sweep", &args).expect("stencil sweep runs");
        },
    )
}

/// The DGEMM regime crossover in `n` at one repetition: the size where
/// the kernel leaves the roof it starts under (cold DRAM traffic
/// dominates tiny matrices), solved by bisection over the closed forms
/// and by the brute-force sweep. The two must agree — that is the
/// acceptance contract `bench_roofline` records.
pub fn dgemm_crossover(lo: i128, hi: i128) -> (Option<Crossover>, Option<Crossover>) {
    let dgemm = Dgemm::new();
    let ceilings = Ceilings::from_arch(&dgemm.analysis.arch);
    let kernel = KernelRoofline::analyze(&dgemm.analysis, "dgemm").expect("dgemm analyzes");
    let base = bindings(&[("reps", 1)]);
    let solved = kernel
        .crossover(&ceilings, "n", &base, lo, hi)
        .expect("solver evaluates");
    let swept = kernel
        .crossover_sweep(&ceilings, "n", &base, lo, hi)
        .expect("sweep evaluates");
    (solved, swept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_roofline::{Ceiling, MemLevel};

    /// Streaming far beyond every cache: the DRAM roof binds, statically
    /// and in the simulator, for the triad and all four kernels.
    #[test]
    fn stream_shapes_dram_bound_at_capacity() {
        for row in [
            triad_roof(20_000, 2, false),
            triad_roof(20_000, 2, true),
            stream_roof(20_000, 2),
        ] {
            assert!(row.data_bytes_exact(), "{row:?}");
            assert_eq!(
                row.static_p.binding,
                Ceiling::Mem(MemLevel::Dram),
                "{} {}",
                row.workload,
                row.static_p
            );
            assert!(row.agrees(), "{} static {} vs dynamic {}",
                row.workload, row.static_p, row.dynamic_p);
        }
    }

    /// L1-resident, rep-amortized shapes: the scalar triad's 12 B/FLOP
    /// fit under the L1 roof — it is compute-bound — while the packed
    /// triad (double peak) and the copy-heavy four-kernel STREAM hit the
    /// L1 bandwidth roof. Static and simulated placements agree on all
    /// three, and the L1 bound agrees *exactly* (same data bytes).
    #[test]
    fn resident_shapes_split_compute_vs_l1() {
        let scalar = triad_roof(1024, 20, false);
        assert_eq!(scalar.static_p.binding, Ceiling::Compute, "{}", scalar.static_p);
        let simd = triad_roof(1024, 20, true);
        assert_eq!(
            simd.static_p.binding,
            Ceiling::Mem(MemLevel::L1),
            "{}",
            simd.static_p
        );
        let stream = stream_roof(1024, 20);
        assert_eq!(
            stream.static_p.binding,
            Ceiling::Mem(MemLevel::L1),
            "{}",
            stream.static_p
        );
        for row in [scalar, simd, stream] {
            assert!(row.data_bytes_exact(), "{row:?}");
            assert!(row.agrees(), "{} static {} vs dynamic {}",
                row.workload, row.static_p, row.dynamic_p);
            assert_eq!(
                row.static_p.mem_cycles[0], row.dynamic_p.mem_cycles[0],
                "the L1 bound is shared exactly"
            );
        }
    }

    /// Cache-resident scalar DGEMM sits exactly at the L1 knee: the ikj
    /// inner iteration moves 32 data bytes (3 loads + 1 store) per 2
    /// FLOPs against a 32 B/cycle L1 and a 2 FLOP/cycle peak — compute
    /// and L1 bounds tie, and a tie is a memory wall (the kernel cannot
    /// go faster than either roof allows). Both placements see the same
    /// exact bytes, so they agree on the call.
    #[test]
    fn dgemm_resident_sits_at_l1_knee() {
        let row = dgemm_roof(32, 1);
        assert!(row.data_bytes_exact(), "{row:?}");
        assert_eq!(
            row.static_p.compute_cycles, row.static_p.mem_cycles[0],
            "the exact knee: {}",
            row.static_p
        );
        assert_eq!(row.static_p.binding, Ceiling::Mem(MemLevel::L1), "{}", row.static_p);
        assert!(row.agrees(), "static {} vs dynamic {}", row.static_p, row.dynamic_p);
        assert_eq!(row.static_p.mem_cycles[0], row.dynamic_p.mem_cycles[0]);
    }

    /// The miniFE solve at a working set ≈ 2× L2: every boundary
    /// streams, the DRAM roof binds, and the annotation-derived static
    /// side agrees with the simulator.
    #[test]
    fn minife_streaming_dram_bound() {
        let row = minife_roof(15, 2000, 1e-8);
        assert!(row.data_bytes_exact(), "{row:?}");
        assert_eq!(
            row.static_p.binding,
            Ceiling::Mem(MemLevel::Dram),
            "{}",
            row.static_p
        );
        assert!(row.agrees(), "static {} vs dynamic {}", row.static_p, row.dynamic_p);
    }

    /// miniFE at an L1-resident size: compute-bound, both ways.
    #[test]
    fn minife_resident_agrees() {
        let row = minife_roof(5, 500, 1e-8);
        assert!(row.data_bytes_exact(), "{row:?}");
        assert!(row.agrees(), "static {} vs dynamic {}", row.static_p, row.dynamic_p);
    }

    /// The triangular lift, end to end: trisolve gets a per-nest model
    /// (the old ladder refused dependent bounds outright), places in
    /// agreement with the simulator from resident through capacity
    /// sizes, and its deep bounds stay honest upper bounds.
    #[test]
    fn trisolve_triangular_nest_places() {
        let analysis = analyze_source(crate::compose::TRISOLVE_SRC, &MiraOptions::default())
            .expect("analyzes");
        let kernel = KernelRoofline::analyze(&analysis, "trisolve").expect("kernel analyzes");
        assert!(kernel.nest_model.is_some(), "the triangular refusal is back");
        for n in [32, 160, 512] {
            let row = trisolve_roof(n);
            assert!(row.data_bytes_exact(), "{row:?}");
            assert!(row.agrees(), "n={n}: static {} vs dynamic {}", row.static_p, row.dynamic_p);
            assert!(
                row.static_p.mem_cycles[1] >= row.dynamic_p.mem_cycles[1]
                    && row.static_p.mem_cycles[2] >= row.dynamic_p.mem_cycles[2],
                "n={n}: a deep bound dipped below the measurement: {row:?}"
            );
        }
    }

    /// The composition lift, end to end: the ping-pong sweep's spliced
    /// model prices both call sites correctly — the static L2 and DRAM
    /// bounds are *bit-equal* with the simulator at a resident and a
    /// far-beyond-cache size.
    #[test]
    fn stencil_sweep_composed_places_bit_equal() {
        let analysis = analyze_source(crate::compose::STENCIL_SWEEP_SRC, &MiraOptions::default())
            .expect("analyzes");
        let kernel = KernelRoofline::analyze(&analysis, "stencil_sweep").expect("kernel analyzes");
        assert!(kernel.nest_model.is_some(), "the composed-callee refusal is back");
        for (n, steps) in [(1024i64, 8i64), (200_000, 4)] {
            let row = stencil_sweep_roof(n, steps);
            assert!(row.data_bytes_exact(), "{row:?}");
            assert_eq!(
                row.static_p.mem_cycles[1], row.dynamic_p.mem_cycles[1],
                "n={n}: {row:?}"
            );
            assert_eq!(
                row.static_p.mem_cycles[2], row.dynamic_p.mem_cycles[2],
                "n={n}: {row:?}"
            );
            assert!(row.agrees(), "n={n}: static {} vs dynamic {}", row.static_p, row.dynamic_p);
        }
    }

    /// The acceptance contract: DGEMM's crossover out of the DRAM roof
    /// (cold compulsory traffic dominates tiny matrices; the O(n³)
    /// core-side traffic overtakes it), solved symbolically, matches the
    /// brute-force parameter sweep.
    #[test]
    fn dgemm_crossover_solved_matches_sweep() {
        let (solved, swept) = dgemm_crossover(2, 64);
        assert_eq!(solved, swept);
        let x = solved.expect("DGEMM leaves the DRAM roof in [2, 64]");
        assert_eq!(x.from, Ceiling::Mem(MemLevel::Dram));
        assert_eq!(x.to, Ceiling::Mem(MemLevel::L1), "onto the L1 knee");
        assert!(x.value > 2 && x.value < 64, "{x:?}");
    }
}
