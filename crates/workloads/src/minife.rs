//! miniFE (Mantevo) in MiniC: assemble a 7-point Poisson system on an
//! `nx × ny × nz` grid into CSR, then solve it with unpreconditioned CG —
//! `waxpby`, `dot`, `matvec` and `cg_solve` exactly as the paper's Table V
//! instruments them.
//!
//! Static modeling needs two annotations, faithfully to §III-C4:
//! * the CSR inner loop's trip count is data-dependent (`row_ptr`), so it
//!   is annotated with a fixed-point per-row estimate (`nnz_row_milli`,
//!   scaled by 1/1000) that the user derives from the assembly formula;
//!   the same pragma carries `lp_cumulative` (the loop sweeps the CSR
//!   arrays as one cumulative prefix — `vals`/`cols` footprints become
//!   exact) and `idx_extent: n` (the gather `x[cols[k]]` is bounded by
//!   the vector length) for the `mira-mem` footprint analysis;
//! * the CG while-loop runs until convergence, so it is annotated with the
//!   user's iteration estimate (`cg_iters`) — the dominant source of
//!   static-vs-dynamic error, growing with problem size like the paper's.

use crate::ValidationRow;
use mira_core::{analyze_source, Analysis, MiraOptions};
use mira_sym::bindings;
use mira_vm::{HostVal, Vm, VmOptions};

pub const MINIFE_SRC: &str = r#"extern double sqrt(double);

void waxpby(int n, double alpha, double* x, double beta, double* y, double* w) {
    for (int i = 0; i < n; i++) {
        w[i] = alpha * x[i] + beta * y[i];
    }
}

double dot(int n, double* x, double* y) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += x[i] * y[i];
    }
    return s;
}

void matvec(int n, int* row_ptr, int* cols, double* vals, double* x, double* y) {
    for (int i = 0; i < n; i++) {
        double s = 0.0;
#pragma @Annotation {lp_iters: nnz_row_milli, lp_scale: 0.001, lp_cumulative: yes, idx_extent: n}
        for (int k = row_ptr[i]; k < row_ptr[i + 1]; k++) {
            s += vals[k] * x[cols[k]];
        }
        y[i] = s;
    }
}

int assemble(int nx, int ny, int nz, int* row_ptr, int* cols, double* vals, double* b) {
    int nnz = 0;
    for (int iz = 0; iz < nz; iz++) {
        for (int iy = 0; iy < ny; iy++) {
            for (int ix = 0; ix < nx; ix++) {
                int row = iz * ny * nx + iy * nx + ix;
                row_ptr[row] = nnz;
                if (iz > 0) { cols[nnz] = row - ny * nx; vals[nnz] = -1.0; nnz++; }
                if (iy > 0) { cols[nnz] = row - nx; vals[nnz] = -1.0; nnz++; }
                if (ix > 0) { cols[nnz] = row - 1; vals[nnz] = -1.0; nnz++; }
                cols[nnz] = row;
                vals[nnz] = 6.0;
                nnz++;
                if (ix < nx - 1) { cols[nnz] = row + 1; vals[nnz] = -1.0; nnz++; }
                if (iy < ny - 1) { cols[nnz] = row + nx; vals[nnz] = -1.0; nnz++; }
                if (iz < nz - 1) { cols[nnz] = row + ny * nx; vals[nnz] = -1.0; nnz++; }
                b[row] = 1.0;
            }
        }
    }
    row_ptr[nx * ny * nz] = nnz;
    return nnz;
}

int cg_solve(int n, int* row_ptr, int* cols, double* vals, double* b, double* x,
             double* r, double* p, double* ap, int max_iter, double tol) {
    for (int i = 0; i < n; i++) {
        x[i] = 0.0;
        r[i] = b[i];
        p[i] = b[i];
    }
    double rtrans = dot(n, r, r);
    double normr = sqrt(rtrans);
    int k = 0;
#pragma @Annotation {lp_iters: cg_iters}
    while (k < max_iter && normr > tol) {
        matvec(n, row_ptr, cols, vals, p, ap);
        double alpha = rtrans / dot(n, p, ap);
        waxpby(n, 1.0, x, alpha, p, x);
        waxpby(n, 1.0, r, -alpha, ap, r);
        double old_rtrans = rtrans;
        rtrans = dot(n, r, r);
        double beta = rtrans / old_rtrans;
        waxpby(n, 1.0, r, beta, p, p);
        normr = sqrt(rtrans);
        k = k + 1;
    }
    return k;
}
"#;

/// CSR capacity (with slack) every harness allocates for an `n`-row
/// system — one definition, so the dynamic harnesses here, in `memval`
/// and in `bench_vm` can never drift apart.
pub fn nnz_capacity(n: usize) -> usize {
    7 * n + 16
}

/// VM memory size that comfortably fits an `n`-row solve.
pub fn solve_mem_size(n: usize) -> usize {
    ((nnz_capacity(n) * 2 + n * 8) * 8 + (64 << 20)).max(64 << 20)
}

/// The eight solver buffers and the `assemble`/`cg_solve` calling
/// contracts, shared by every harness that drives the solve.
pub struct SolveBuffers {
    pub row_ptr: u64,
    pub cols: u64,
    pub vals: u64,
    pub b: u64,
    pub x: u64,
    pub r: u64,
    pub p: u64,
    pub ap: u64,
}

impl SolveBuffers {
    /// Allocate the buffers in the canonical order on either VM engine.
    pub fn alloc<A: SolveAlloc>(vm: &mut A, n: usize) -> SolveBuffers {
        let cap = nnz_capacity(n);
        SolveBuffers {
            row_ptr: vm.host_alloc_i64(&vec![0; n + 1]),
            cols: vm.host_alloc_i64(&vec![0; cap]),
            vals: vm.host_alloc_zeroed_f64(cap),
            b: vm.host_alloc_zeroed_f64(n),
            x: vm.host_alloc_zeroed_f64(n),
            r: vm.host_alloc_zeroed_f64(n),
            p: vm.host_alloc_zeroed_f64(n),
            ap: vm.host_alloc_zeroed_f64(n),
        }
    }

    pub fn assemble_args(&self, nx: i64, ny: i64, nz: i64) -> Vec<HostVal> {
        vec![
            HostVal::Int(nx),
            HostVal::Int(ny),
            HostVal::Int(nz),
            HostVal::Int(self.row_ptr as i64),
            HostVal::Int(self.cols as i64),
            HostVal::Int(self.vals as i64),
            HostVal::Int(self.b as i64),
        ]
    }

    pub fn solve_args(&self, n: i64, max_iter: i64, tol: f64) -> Vec<HostVal> {
        vec![
            HostVal::Int(n),
            HostVal::Int(self.row_ptr as i64),
            HostVal::Int(self.cols as i64),
            HostVal::Int(self.vals as i64),
            HostVal::Int(self.b as i64),
            HostVal::Int(self.x as i64),
            HostVal::Int(self.r as i64),
            HostVal::Int(self.p as i64),
            HostVal::Int(self.ap as i64),
            HostVal::Int(max_iter),
            HostVal::Fp(tol),
        ]
    }
}

/// Host-allocation surface shared by both VM engines, so one harness
/// definition can drive either.
pub trait SolveAlloc {
    fn host_alloc_i64(&mut self, data: &[i64]) -> u64;
    fn host_alloc_zeroed_f64(&mut self, n: usize) -> u64;
}

impl SolveAlloc for Vm {
    fn host_alloc_i64(&mut self, data: &[i64]) -> u64 {
        self.alloc_i64(data)
    }
    fn host_alloc_zeroed_f64(&mut self, n: usize) -> u64 {
        self.alloc_zeroed_f64(n)
    }
}

impl SolveAlloc for mira_vm::reference::ReferenceVm {
    fn host_alloc_i64(&mut self, data: &[i64]) -> u64 {
        self.alloc_i64(data)
    }
    fn host_alloc_zeroed_f64(&mut self, n: usize) -> u64 {
        self.alloc_zeroed_f64(n)
    }
}

/// Outcome of one dynamic miniFE solve.
#[derive(Clone, Debug)]
pub struct MiniFeRun {
    /// Dynamic inclusive FPI per instrumented function.
    pub waxpby_fpi: i128,
    pub matvec_fpi: i128,
    pub cg_solve_fpi: i128,
    /// Iterations CG actually needed.
    pub iterations: i64,
    /// Total nonzeros of the assembled matrix.
    pub nnz: i64,
    /// Calls to waxpby / matvec observed.
    pub waxpby_calls: u64,
    pub matvec_calls: u64,
}

pub struct MiniFe {
    pub analysis: Analysis,
}

impl Default for MiniFe {
    fn default() -> Self {
        MiniFe::new()
    }
}

impl MiniFe {
    pub fn new() -> MiniFe {
        MiniFe::with_compiler(mira_vcc::Options::default())
    }

    /// With explicit compiler options (e.g. the spill-everything
    /// baseline).
    pub fn with_compiler(compiler: mira_vcc::Options) -> MiniFe {
        let opts = MiraOptions {
            compiler,
            ..MiraOptions::default()
        };
        let analysis = analyze_source(MINIFE_SRC, &opts).expect("miniFE analyzes");
        MiniFe { analysis }
    }

    /// Exact nonzero count of the 7-point matrix (the formula a user can
    /// derive from the assembly loop without running it).
    pub fn nnz_formula(nx: i64, ny: i64, nz: i64) -> i64 {
        7 * nx * ny * nz - 2 * (nx * ny + ny * nz + nz * nx)
    }

    /// Fixed-point (milli) per-row nonzero estimate for the `matvec`
    /// annotation parameter.
    pub fn nnz_row_milli(nx: i64, ny: i64, nz: i64) -> i64 {
        let n = nx * ny * nz;
        (Self::nnz_formula(nx, ny, nz) * 1000 + n / 2) / n
    }

    /// The user's a-priori CG iteration estimate: CG on a Poisson system
    /// needs O(max dimension) iterations, so the "user" calibrates two
    /// coarse runs at 60% and 80% of the target dimensions and linearly
    /// extrapolates. The residual nonlinearity of real convergence is the
    /// paper's "static analysis cannot capture dynamic behavior" error.
    pub fn estimate_iters(&self, nx: i64, ny: i64, nz: i64) -> i64 {
        let scale = |d: i64, f: i64| ((d * f) / 10).max(4);
        let (ax, ay, az) = (scale(nx, 6), scale(ny, 6), scale(nz, 6));
        let (bx, by, bz) = (scale(nx, 8), scale(ny, 8), scale(nz, 8));
        let i1 = self.run_dynamic(ax, ay, az, 2000, 1e-8).iterations;
        let i2 = self.run_dynamic(bx, by, bz, 2000, 1e-8).iterations;
        let d1 = ax.max(ay).max(az);
        let d2 = bx.max(by).max(bz);
        let d = nx.max(ny).max(nz);
        if d2 == d1 {
            return i2;
        }
        i2 + (i2 - i1) * (d - d2) / (d2 - d1)
    }

    /// Run the full pipeline dynamically (assembly is excluded from the
    /// instrumented counts by resetting counters, matching how TAU scopes
    /// measurement to the solve).
    pub fn run_dynamic(&self, nx: i64, ny: i64, nz: i64, max_iter: i64, tol: f64) -> MiniFeRun {
        let n = (nx * ny * nz) as usize;
        let mut vm = Vm::load(
            &self.analysis.object,
            VmOptions {
                mem_size: solve_mem_size(n),
                ..VmOptions::default()
            },
        )
        .expect("vm loads");
        let bufs = SolveBuffers::alloc(&mut vm, n);

        vm.call("assemble", &bufs.assemble_args(nx, ny, nz))
            .expect("assemble runs");
        let nnz = vm.int_return();
        assert_eq!(nnz, Self::nnz_formula(nx, ny, nz), "assembly nnz formula");

        vm.reset_counters(); // measure the solve only, like the paper
        vm.call("cg_solve", &bufs.solve_args(n as i64, max_iter, tol))
            .expect("cg_solve runs");
        let iterations = vm.int_return();
        let prof = vm.profile();
        let arch = &self.analysis.arch;
        MiniFeRun {
            waxpby_fpi: prof.fpi("waxpby", arch),
            matvec_fpi: prof.fpi("matvec", arch),
            cg_solve_fpi: prof.fpi("cg_solve", arch),
            iterations,
            nnz,
            waxpby_calls: prof.function("waxpby").map(|f| f.calls).unwrap_or(0),
            matvec_calls: prof.function("matvec").map(|f| f.calls).unwrap_or(0),
        }
    }

    /// Static model evaluation with user-supplied parameter estimates.
    /// Returns `(waxpby per-call, matvec per-call, cg_solve total)` FPI.
    pub fn static_fpi(&self, nx: i64, ny: i64, nz: i64, cg_iters: i64) -> (i128, i128, i128) {
        let n = (nx * ny * nz) as i128;
        let binds = bindings(&[
            ("n", n),
            ("nnz_row_milli", Self::nnz_row_milli(nx, ny, nz) as i128),
            ("cg_iters", cg_iters as i128),
        ]);
        let arch = &self.analysis.arch;
        let waxpby = self.analysis.report("waxpby", &binds).unwrap().fpi(arch);
        let matvec = self.analysis.report("matvec", &binds).unwrap().fpi(arch);
        let cg = self.analysis.report("cg_solve", &binds).unwrap().fpi(arch);
        (waxpby, matvec, cg)
    }

    /// Table-V style rows for one grid: waxpby (per call), matvec (per
    /// call), cg_solve (whole solve).
    pub fn rows(&self, nx: i64, ny: i64, nz: i64, max_iter: i64, tol: f64) -> Vec<ValidationRow> {
        let dynamic = self.run_dynamic(nx, ny, nz, max_iter, tol);
        let est = self.estimate_iters(nx, ny, nz);
        let (w_static, m_static, cg_static) = self.static_fpi(nx, ny, nz, est);
        let label = format!("{nx}x{ny}x{nz}");
        vec![
            ValidationRow {
                label: label.clone(),
                function: "waxpby".to_string(),
                dynamic_fpi: dynamic.waxpby_fpi / dynamic.waxpby_calls.max(1) as i128,
                static_fpi: w_static,
            },
            ValidationRow {
                label: label.clone(),
                function: "matvec".to_string(),
                dynamic_fpi: dynamic.matvec_fpi / dynamic.matvec_calls.max(1) as i128,
                static_fpi: m_static,
            },
            ValidationRow {
                label,
                function: "cg_solve".to_string(),
                dynamic_fpi: dynamic.cg_solve_fpi,
                static_fpi: cg_static,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_converges_and_counts_match_shape() {
        let m = MiniFe::new();
        let run = m.run_dynamic(6, 6, 6, 500, 1e-8);
        assert!(run.iterations > 3 && run.iterations < 500, "{run:?}");
        assert_eq!(run.nnz, MiniFe::nnz_formula(6, 6, 6));
        // matvec dominates: 2 FPI per nonzero per call
        let per_call = run.matvec_fpi / run.matvec_calls as i128;
        assert_eq!(per_call, 2 * run.nnz as i128);
        // 3 waxpby calls per iteration
        assert_eq!(run.waxpby_calls as i64, 3 * run.iterations);
    }

    #[test]
    fn static_waxpby_exact() {
        let m = MiniFe::new();
        let run = m.run_dynamic(5, 5, 5, 500, 1e-8);
        let (w_static, _, _) = m.static_fpi(5, 5, 5, run.iterations);
        let w_dynamic = run.waxpby_fpi / run.waxpby_calls as i128;
        assert_eq!(w_static, w_dynamic); // 3n per call, exactly
    }

    #[test]
    fn static_cg_close_when_iters_known() {
        let m = MiniFe::new();
        let run = m.run_dynamic(6, 6, 6, 500, 1e-8);
        // with the *true* iteration count the only error left is the
        // nnz-per-row fixed-point estimate and the hidden sqrt bodies
        let (_, m_static, cg_static) = m.static_fpi(6, 6, 6, run.iterations);
        let m_dynamic = run.matvec_fpi / run.matvec_calls as i128;
        let merr = 100.0 * (m_dynamic - m_static).abs() as f64 / m_dynamic as f64;
        assert!(merr < 1.0, "matvec error {merr}%");
        let cerr = 100.0 * (run.cg_solve_fpi - cg_static).abs() as f64
            / run.cg_solve_fpi as f64;
        assert!(cerr < 2.0, "cg error {cerr}%");
    }

    #[test]
    fn solution_is_correct() {
        // verify CG actually solves A x = b: recompute residual in Rust
        let m = MiniFe::new();
        let (nx, ny, nz) = (5, 4, 3);
        let n = (nx * ny * nz) as usize;
        let mut vm = Vm::new(&m.analysis.object).unwrap();
        let nnz_cap = 7 * n + 16;
        let row_ptr = vm.alloc_i64(&vec![0; n + 1]);
        let cols = vm.alloc_i64(&vec![0; nnz_cap]);
        let vals = vm.alloc_zeroed_f64(nnz_cap);
        let b = vm.alloc_zeroed_f64(n);
        let x = vm.alloc_zeroed_f64(n);
        let r = vm.alloc_zeroed_f64(n);
        let p = vm.alloc_zeroed_f64(n);
        let ap = vm.alloc_zeroed_f64(n);
        vm.call(
            "assemble",
            &[
                HostVal::Int(nx),
                HostVal::Int(ny),
                HostVal::Int(nz),
                HostVal::Int(row_ptr as i64),
                HostVal::Int(cols as i64),
                HostVal::Int(vals as i64),
                HostVal::Int(b as i64),
            ],
        )
        .unwrap();
        let nnz = vm.int_return() as usize;
        vm.call(
            "cg_solve",
            &[
                HostVal::Int(n as i64),
                HostVal::Int(row_ptr as i64),
                HostVal::Int(cols as i64),
                HostVal::Int(vals as i64),
                HostVal::Int(b as i64),
                HostVal::Int(x as i64),
                HostVal::Int(r as i64),
                HostVal::Int(p as i64),
                HostVal::Int(ap as i64),
                HostVal::Int(500),
                HostVal::Fp(1e-10),
            ],
        )
        .unwrap();
        let rp = vm.read_i64(row_ptr, n + 1);
        let cl = vm.read_i64(cols, nnz);
        let vl = vm.read_f64(vals, nnz);
        let xs = vm.read_f64(x, n);
        let bs = vm.read_f64(b, n);
        // residual ||Ax - b||_inf
        let mut worst: f64 = 0.0;
        for i in 0..n {
            let mut s = 0.0;
            for k in rp[i] as usize..rp[i + 1] as usize {
                s += vl[k] * xs[cl[k] as usize];
            }
            worst = worst.max((s - bs[i]).abs());
        }
        assert!(worst < 1e-6, "residual {worst}");
    }
}
