//! # proptest (offline shim)
//!
//! The build environment for this repository has no network access, so the
//! real `proptest` crate cannot be fetched. This in-tree stand-in covers
//! the API surface the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, integer-range,
//!   tuple, [`strategy::Just`] and [`strategy::Union`] strategies;
//! * [`arbitrary::any`] for the primitive types;
//! * [`collection::vec`] and [`option::of`];
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//!   and `prop_assume!` macros;
//! * [`test_runner::ProptestConfig`] (`cases` and `max_shrink_iters`
//!   are honoured; `max_shrink_iters = 0` means the 512-probe default,
//!   not "no shrinking").
//!
//! Values are drawn from a deterministic xorshift generator seeded from
//! the test name, so failures reproduce across runs. Failing cases
//! **shrink**: the runner re-runs the body on smaller candidate inputs
//! (integers bisect toward their range start, vectors shorten, tuples
//! shrink component-wise) and panics with the minimal still-failing
//! input. Swap this path dependency for crates.io `proptest` and the
//! same test sources still build.

pub mod test_runner {
    /// Deterministic split-mix / xorshift generator.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name so every test gets a distinct, stable
        /// stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna)
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }
    }

    /// Runner configuration; `cases` and `max_shrink_iters` have an
    /// effect in the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
        /// Shrink-probe budget after a failure; `0` selects the default
        /// budget of 512 probes (the shim never disables shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 128,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values. Unlike the real crate there is no
    /// value tree — `generate` simply draws a value, and `shrink`
    /// proposes strictly-simpler candidates for a failing one.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Simpler candidate replacements for a failing value, most
        /// aggressive first; empty when the strategy cannot shrink (the
        /// default — e.g. mapped strategies, whose projection cannot be
        /// inverted).
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Box a strategy for use in a heterogeneous [`Union`] (see
    /// `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between alternative strategies of one value type.
    pub struct Union<T> {
        alts: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(alts: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            Union { alts }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.alts.len() as u64) as usize;
            self.alts[i].generate(rng)
        }
    }

    /// Bisect an integer toward the range start: `[lo, midpoint, v-1]`,
    /// deduplicated and strictly below `v`.
    fn shrink_toward(lo: i128, v: i128) -> Vec<i128> {
        let mut out = Vec::new();
        if v <= lo {
            return out;
        }
        for c in [lo, lo + (v - lo) / 2, v - 1] {
            if c < v && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = rng.next_u128() % span;
                    ((self.start as i128) + off as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let off = rng.next_u128() % span;
                    ((lo as i128) + off as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

    // i128/u128 spans can overflow the helper arithmetic above; the
    // workspace only uses narrow i128 ranges, handled exactly here.
    impl Strategy for ::std::ops::Range<i128> {
        type Value = i128;
        fn generate(&self, rng: &mut TestRng) -> i128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u128;
            self.start + (rng.next_u128() % span) as i128
        }
        fn shrink(&self, value: &i128) -> Vec<i128> {
            shrink_toward(self.start, *value)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+)
            where
                $($n::Value: Clone),+
            {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // one component at a time, the rest held fixed
                    let mut out = Vec::new();
                    $(
                        for c in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = c;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` — `any::<u8>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for i128 {
        fn arbitrary_value(rng: &mut TestRng) -> i128 {
            rng.next_u128() as i128
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary_value(rng: &mut TestRng) -> u128 {
            rng.next_u128()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // finite, roughly unit-scale values: property tests on FP code
            // want comparable magnitudes, not NaN storms
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2e3 - 1e3
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // shorter first (respecting the lower length bound) …
            if value.len() > self.size.lo {
                out.push(value[..self.size.lo].to_vec());
                out.push(value[..value.len() - 1].to_vec());
            }
            // … then element-wise, on a bounded prefix
            for (i, v) in value.iter().enumerate().take(4) {
                for c in self.elem.shrink(v) {
                    let mut next = value.clone();
                    next[i] = c;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::option::of(inner)` — `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(v) => std::iter::once(None)
                    .chain(self.inner.shrink(v).into_iter().map(Some))
                    .collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Drive one property test: draw `cases` inputs, run the body on each,
/// and on a failure shrink toward a minimal failing input before
/// re-panicking with it. Used by the `proptest!` macro — not called
/// directly by test code.
pub fn run_cases<S, F>(name: &str, cfg: &test_runner::ProptestConfig, strategy: S, body: F)
where
    S: strategy::Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value),
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut rng = test_runner::TestRng::deterministic(name);
    for _ in 0..cfg.cases {
        let value = strategy.generate(&mut rng);
        if catch_unwind(AssertUnwindSafe(|| body(value.clone()))).is_ok() {
            continue;
        }
        // greedy shrink: adopt the first simpler candidate that still
        // fails, restart from it, stop when none fails (local minimum).
        // The original failure already printed its message; the shrink
        // probes run under a silenced panic hook so hundreds of
        // intermediate backtraces do not bury the minimal reproducer.
        let mut minimal = value;
        let mut budget: u32 = match cfg.max_shrink_iters {
            0 => 512,
            n => n,
        };
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        'shrinking: while budget > 0 {
            for candidate in strategy.shrink(&minimal) {
                budget -= 1;
                if catch_unwind(AssertUnwindSafe(|| body(candidate.clone()))).is_err() {
                    minimal = candidate;
                    continue 'shrinking;
                }
                if budget == 0 {
                    break;
                }
            }
            break;
        }
        std::panic::set_hook(prev_hook);
        panic!("proptest {name}: minimal failing input after shrinking: {minimal:?}");
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the call site) that
/// draws `cases` random inputs, runs the body for each, and shrinks any
/// failing input to a minimal reproducer via [`run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    &__cfg,
                    ($($strat,)+),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (-10i64..10).generate(&mut rng);
            assert!((-10..10).contains(&v));
            let w = (0u8..4).generate(&mut rng);
            assert!(w < 4);
            let x = (-3i128..15).generate(&mut rng);
            assert!((-3..15).contains(&x));
        }
    }

    #[test]
    fn vec_and_option_shapes() {
        let mut rng = crate::test_runner::TestRng::deterministic("shapes");
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..4, 1..=3).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            match crate::option::of(0i64..6).generate(&mut rng) {
                None => saw_none = true,
                Some(x) => {
                    saw_some = true;
                    assert!((0..6).contains(&x));
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u8), Just(2), 4u8..8].prop_map(|v| v as u32 * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20 || (40..80).contains(&v), "{v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_form_works(a in 0i64..100, b in any::<bool>()) {
            prop_assert!(a >= 0);
            prop_assert_eq!(b as u8 | (!b) as u8, 1);
        }
    }

    #[test]
    fn integer_shrink_bisects_toward_start() {
        let s = 3i64..100;
        let c = s.shrink(&50);
        assert!(c.contains(&3), "{c:?}");
        assert!(c.iter().all(|v| (3..50).contains(v)), "{c:?}");
        assert!(s.shrink(&3).is_empty(), "range start cannot shrink");
        let t = (3i64..100, 0u8..4).shrink(&(50, 2));
        assert!(t.iter().all(|(a, b)| (*a, *b) != (50, 2)));
        assert!(t.contains(&(3, 2)) && t.contains(&(50, 0)), "{t:?}");
    }

    #[test]
    fn failing_case_shrinks_to_minimal_input() {
        // the property "v < 10" fails for every v ≥ 10; greedy shrinking
        // must land exactly on the boundary case
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(
                "failing_case_shrinks_to_minimal_input",
                &ProptestConfig::with_cases(64),
                (0i64..1000,),
                |(v,)| assert!(v < 10),
            );
        });
        let payload = result.expect_err("the property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("minimal failing input after shrinking: (10,)"),
            "{msg}"
        );
    }
}
