//! # mira-isa — VX86, the virtual x86-flavored instruction set
//!
//! Mira analyzes *object code* because compiler transformations make
//! source-only models inaccurate (paper §I). This crate defines the
//! instruction set that our compiler (`mira-vcc`) targets, our object
//! format (`mira-vobj`) stores, our disassembler decodes, and our
//! instrumented interpreter (`mira-vm`) executes.
//!
//! VX86 is deliberately x86-64-shaped:
//!
//! * 16 general-purpose 64-bit registers and 16 XMM registers holding two
//!   `f64` lanes (SSE2 style);
//! * scalar (`addsd`, `mulsd`, ...) and packed (`addpd`, `mulpd`, ...)
//!   double-precision arithmetic — the distinction the paper's FPI metric
//!   and the PBound comparison hinge on;
//! * a variable-length binary encoding ([`Inst::encode`] /
//!   [`Inst::decode`]) so the object format contains real bytes, not
//!   structs;
//! * a mapping from every opcode to one of the 64 instruction categories
//!   of the architecture description file ([`Inst::category`]).

use mira_arch::Category;
use std::fmt;

/// A general-purpose register `r0`–`r15`.
///
/// ABI conventions used by `mira-vcc` / `mira-vm`:
/// integer/pointer arguments in `r0`–`r5`, return value in `r0`,
/// `r14` = frame pointer, `r15` = stack pointer; the rest are scratch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u8);

/// An XMM register `x0`–`x15` holding two double-precision lanes.
/// FP arguments in `x0`–`x7`, FP return value in `x0`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct XReg(pub u8);

pub const NUM_REGS: usize = 16;
pub const NUM_XREGS: usize = 16;

/// Frame pointer (callee-saved).
pub const RBP: Reg = Reg(14);
/// Stack pointer.
pub const RSP: Reg = Reg(15);
/// Integer/pointer argument registers (return value in `r0`).
pub const RARG: [Reg; 6] = [Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5)];
/// FP argument registers.
pub const XARG: [XReg; 8] = [
    XReg(0),
    XReg(1),
    XReg(2),
    XReg(3),
    XReg(4),
    XReg(5),
    XReg(6),
    XReg(7),
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RBP => write!(f, "rbp"),
            RSP => write!(f, "rsp"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

/// A memory operand `[base + index*scale + disp]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mem {
    pub base: Reg,
    pub index: Option<(Reg, u8)>,
    pub disp: i32,
}

impl Mem {
    pub fn base(base: Reg) -> Mem {
        Mem {
            base,
            index: None,
            disp: 0,
        }
    }

    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base,
            index: None,
            disp,
        }
    }

    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32) -> Mem {
        Mem {
            base,
            index: Some((index, scale)),
            disp,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some((r, s)) = self.index {
            write!(f, " + {r}*{s}")?;
        }
        if self.disp != 0 {
            if self.disp > 0 {
                write!(f, " + {}", self.disp)?;
            } else {
                write!(f, " - {}", -self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// Condition codes for `jcc` / `setcc`. `B`/`A` variants are the unsigned
/// comparisons produced by `ucomisd`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Cc {
    E = 0,
    Ne = 1,
    L = 2,
    Le = 3,
    G = 4,
    Ge = 5,
    B = 6,
    Be = 7,
    A = 8,
    Ae = 9,
}

impl Cc {
    pub fn from_u8(v: u8) -> Option<Cc> {
        use Cc::*;
        [E, Ne, L, Le, G, Ge, B, Be, A, Ae].get(v as usize).copied()
    }

    /// The negated condition (`jne` for `je`, ...).
    pub fn negate(self) -> Cc {
        use Cc::*;
        match self {
            E => Ne,
            Ne => E,
            L => Ge,
            Le => G,
            G => Le,
            Ge => L,
            B => Ae,
            Be => A,
            A => Be,
            Ae => B,
        }
    }

    pub fn mnemonic(self) -> &'static str {
        use Cc::*;
        match self {
            E => "e",
            Ne => "ne",
            L => "l",
            Le => "le",
            G => "g",
            Ge => "ge",
            B => "b",
            Be => "be",
            A => "a",
            Ae => "ae",
        }
    }
}

/// One VX86 instruction, operands fully resolved (jump targets are absolute
/// byte addresses within the object's `.text`; call targets are symbol
/// indices).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    // --- integer data transfer ---
    MovRR(Reg, Reg),
    MovRI(Reg, i64),
    Load(Reg, Mem),
    Store(Mem, Reg),
    Lea(Reg, Mem),
    Push(Reg),
    Pop(Reg),
    // --- 64-bit mode ---
    Movsxd(Reg, Reg),
    Cqo,
    // --- integer arithmetic ---
    AddRR(Reg, Reg),
    AddRI(Reg, i64),
    SubRR(Reg, Reg),
    SubRI(Reg, i64),
    ImulRR(Reg, Reg),
    ImulRI(Reg, i64),
    /// Signed divide of `r0` by the operand; quotient in `r0`, remainder in
    /// `r11` (VX86 convention).
    Idiv(Reg),
    Neg(Reg),
    CmpRR(Reg, Reg),
    CmpRI(Reg, i64),
    // --- integer logical ---
    AndRR(Reg, Reg),
    OrRR(Reg, Reg),
    XorRR(Reg, Reg),
    Not(Reg),
    // --- shifts ---
    ShlRI(Reg, u8),
    SarRI(Reg, u8),
    ShrRI(Reg, u8),
    // --- bit & byte ---
    TestRR(Reg, Reg),
    Setcc(Cc, Reg),
    // --- control transfer ---
    Jmp(u32),
    Jcc(Cc, u32),
    /// Call the function with this symbol index.
    Call(u32),
    Ret,
    // --- SSE2 data movement ---
    MovsdXX(XReg, XReg),
    MovsdLoad(XReg, Mem),
    MovsdStore(Mem, XReg),
    MovapdXX(XReg, XReg),
    MovupdLoad(XReg, Mem),
    MovupdStore(Mem, XReg),
    /// Move an integer register into lane 0 of an XMM register (bit cast).
    MovqXR(XReg, Reg),
    MovqRX(Reg, XReg),
    // --- SSE2 scalar arithmetic (lane 0) ---
    Addsd(XReg, XReg),
    Subsd(XReg, XReg),
    Mulsd(XReg, XReg),
    Divsd(XReg, XReg),
    Sqrtsd(XReg, XReg),
    Minsd(XReg, XReg),
    Maxsd(XReg, XReg),
    // --- SSE2 packed arithmetic (both lanes) ---
    Addpd(XReg, XReg),
    Subpd(XReg, XReg),
    Mulpd(XReg, XReg),
    Divpd(XReg, XReg),
    Sqrtpd(XReg, XReg),
    // --- SSE2 logical ---
    Andpd(XReg, XReg),
    Orpd(XReg, XReg),
    Xorpd(XReg, XReg),
    // --- SSE2 compare ---
    Ucomisd(XReg, XReg),
    // --- SSE2 shuffle/unpack ---
    /// `dst.lane0 = dst.lane1; dst.lane1 = src.lane1` (high unpack, used
    /// for horizontal reduction of packed accumulators).
    Unpckhpd(XReg, XReg),
    /// `dst.lane1 = src.lane0` (low unpack; `unpcklpd x, x` broadcasts
    /// lane 0 — how scalars are splat across a packed vector).
    Unpcklpd(XReg, XReg),
    // --- SSE2 conversion ---
    Cvtsi2sd(XReg, Reg),
    Cvttsd2si(Reg, XReg),
    // --- misc ---
    Nop,
    /// Stop the virtual machine (top-of-stack return).
    Halt,
}

mod opcodes {
    pub const MOV_RR: u8 = 0x01;
    pub const MOV_RI: u8 = 0x02;
    pub const LOAD: u8 = 0x03;
    pub const STORE: u8 = 0x04;
    pub const LEA: u8 = 0x05;
    pub const PUSH: u8 = 0x06;
    pub const POP: u8 = 0x07;
    pub const MOVSXD: u8 = 0x08;
    pub const CQO: u8 = 0x09;
    pub const ADD_RR: u8 = 0x10;
    pub const ADD_RI: u8 = 0x11;
    pub const SUB_RR: u8 = 0x12;
    pub const SUB_RI: u8 = 0x13;
    pub const IMUL_RR: u8 = 0x14;
    pub const IMUL_RI: u8 = 0x15;
    pub const IDIV: u8 = 0x16;
    pub const NEG: u8 = 0x17;
    pub const CMP_RR: u8 = 0x18;
    pub const CMP_RI: u8 = 0x19;
    pub const AND_RR: u8 = 0x20;
    pub const OR_RR: u8 = 0x21;
    pub const XOR_RR: u8 = 0x22;
    pub const NOT: u8 = 0x23;
    pub const SHL_RI: u8 = 0x24;
    pub const SAR_RI: u8 = 0x25;
    pub const SHR_RI: u8 = 0x26;
    pub const TEST_RR: u8 = 0x27;
    pub const SETCC: u8 = 0x28;
    pub const JMP: u8 = 0x30;
    pub const JCC: u8 = 0x31;
    pub const CALL: u8 = 0x32;
    pub const RET: u8 = 0x33;
    pub const MOVSD_XX: u8 = 0x40;
    pub const MOVSD_LOAD: u8 = 0x41;
    pub const MOVSD_STORE: u8 = 0x42;
    pub const MOVAPD_XX: u8 = 0x43;
    pub const MOVUPD_LOAD: u8 = 0x44;
    pub const MOVUPD_STORE: u8 = 0x45;
    pub const MOVQ_XR: u8 = 0x46;
    pub const MOVQ_RX: u8 = 0x47;
    pub const ADDSD: u8 = 0x50;
    pub const SUBSD: u8 = 0x51;
    pub const MULSD: u8 = 0x52;
    pub const DIVSD: u8 = 0x53;
    pub const SQRTSD: u8 = 0x54;
    pub const MINSD: u8 = 0x55;
    pub const MAXSD: u8 = 0x56;
    pub const ADDPD: u8 = 0x60;
    pub const SUBPD: u8 = 0x61;
    pub const MULPD: u8 = 0x62;
    pub const DIVPD: u8 = 0x63;
    pub const SQRTPD: u8 = 0x64;
    pub const ANDPD: u8 = 0x70;
    pub const ORPD: u8 = 0x71;
    pub const XORPD: u8 = 0x72;
    pub const UCOMISD: u8 = 0x73;
    pub const UNPCKHPD: u8 = 0x74;
    pub const UNPCKLPD: u8 = 0x77;
    pub const CVTSI2SD: u8 = 0x75;
    pub const CVTTSD2SI: u8 = 0x76;
    pub const NOP: u8 = 0x80;
    pub const HALT: u8 = 0x81;
}

/// Errors from [`Inst::decode`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The byte stream ended inside an instruction.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Malformed operand (bad register number, scale or condition code).
    BadOperand,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction stream"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadOperand => write!(f, "malformed operand"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---- operand encoding helpers ----

fn put_reg(out: &mut Vec<u8>, r: Reg) {
    out.push(r.0);
}

fn put_xreg(out: &mut Vec<u8>, r: XReg) {
    out.push(r.0);
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_mem(out: &mut Vec<u8>, m: Mem) {
    out.push(m.base.0);
    match m.index {
        Some((r, s)) => {
            out.push(1);
            out.push(r.0);
            out.push(s);
        }
        None => {
            out.push(0);
            out.push(0);
            out.push(0);
        }
    }
    out.extend_from_slice(&m.disp.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        if (b as usize) < NUM_REGS {
            Ok(Reg(b))
        } else {
            Err(DecodeError::BadOperand)
        }
    }

    fn xreg(&mut self) -> Result<XReg, DecodeError> {
        let b = self.u8()?;
        if (b as usize) < NUM_XREGS {
            Ok(XReg(b))
        } else {
            Err(DecodeError::BadOperand)
        }
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let end = self.pos + 8;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(i64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos + 4;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let base = self.reg()?;
        let has_index = self.u8()?;
        let idx_reg = self.u8()?;
        let scale = self.u8()?;
        let disp = self.i32()?;
        let index = if has_index != 0 {
            if (idx_reg as usize) >= NUM_REGS || !matches!(scale, 1 | 2 | 4 | 8) {
                return Err(DecodeError::BadOperand);
            }
            Some((Reg(idx_reg), scale))
        } else {
            None
        };
        Ok(Mem { base, index, disp })
    }

    fn cc(&mut self) -> Result<Cc, DecodeError> {
        Cc::from_u8(self.u8()?).ok_or(DecodeError::BadOperand)
    }
}

fn bin_x(out: &mut Vec<u8>, op: u8, d: XReg, s: XReg) {
    out.push(op);
    put_xreg(out, d);
    put_xreg(out, s);
}

impl Inst {
    /// Append the binary encoding of this instruction to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use opcodes::*;
        use Inst::*;
        match *self {
            MovRR(d, s) => {
                out.push(MOV_RR);
                put_reg(out, d);
                put_reg(out, s);
            }
            MovRI(d, v) => {
                out.push(MOV_RI);
                put_reg(out, d);
                put_i64(out, v);
            }
            Load(d, m) => {
                out.push(LOAD);
                put_reg(out, d);
                put_mem(out, m);
            }
            Store(m, s) => {
                out.push(STORE);
                put_mem(out, m);
                put_reg(out, s);
            }
            Lea(d, m) => {
                out.push(LEA);
                put_reg(out, d);
                put_mem(out, m);
            }
            Push(r) => {
                out.push(PUSH);
                put_reg(out, r);
            }
            Pop(r) => {
                out.push(POP);
                put_reg(out, r);
            }
            Movsxd(d, s) => {
                out.push(MOVSXD);
                put_reg(out, d);
                put_reg(out, s);
            }
            Cqo => out.push(CQO),
            AddRR(d, s) => {
                out.push(ADD_RR);
                put_reg(out, d);
                put_reg(out, s);
            }
            AddRI(d, v) => {
                out.push(ADD_RI);
                put_reg(out, d);
                put_i64(out, v);
            }
            SubRR(d, s) => {
                out.push(SUB_RR);
                put_reg(out, d);
                put_reg(out, s);
            }
            SubRI(d, v) => {
                out.push(SUB_RI);
                put_reg(out, d);
                put_i64(out, v);
            }
            ImulRR(d, s) => {
                out.push(IMUL_RR);
                put_reg(out, d);
                put_reg(out, s);
            }
            ImulRI(d, v) => {
                out.push(IMUL_RI);
                put_reg(out, d);
                put_i64(out, v);
            }
            Idiv(r) => {
                out.push(IDIV);
                put_reg(out, r);
            }
            Neg(r) => {
                out.push(NEG);
                put_reg(out, r);
            }
            CmpRR(a, b) => {
                out.push(CMP_RR);
                put_reg(out, a);
                put_reg(out, b);
            }
            CmpRI(a, v) => {
                out.push(CMP_RI);
                put_reg(out, a);
                put_i64(out, v);
            }
            AndRR(d, s) => {
                out.push(AND_RR);
                put_reg(out, d);
                put_reg(out, s);
            }
            OrRR(d, s) => {
                out.push(OR_RR);
                put_reg(out, d);
                put_reg(out, s);
            }
            XorRR(d, s) => {
                out.push(XOR_RR);
                put_reg(out, d);
                put_reg(out, s);
            }
            Not(r) => {
                out.push(NOT);
                put_reg(out, r);
            }
            ShlRI(r, k) => {
                out.push(SHL_RI);
                put_reg(out, r);
                out.push(k);
            }
            SarRI(r, k) => {
                out.push(SAR_RI);
                put_reg(out, r);
                out.push(k);
            }
            ShrRI(r, k) => {
                out.push(SHR_RI);
                put_reg(out, r);
                out.push(k);
            }
            TestRR(a, b) => {
                out.push(TEST_RR);
                put_reg(out, a);
                put_reg(out, b);
            }
            Setcc(cc, r) => {
                out.push(SETCC);
                out.push(cc as u8);
                put_reg(out, r);
            }
            Jmp(t) => {
                out.push(JMP);
                put_u32(out, t);
            }
            Jcc(cc, t) => {
                out.push(JCC);
                out.push(cc as u8);
                put_u32(out, t);
            }
            Call(sym) => {
                out.push(CALL);
                put_u32(out, sym);
            }
            Ret => out.push(RET),
            MovsdXX(d, s) => {
                out.push(MOVSD_XX);
                put_xreg(out, d);
                put_xreg(out, s);
            }
            MovsdLoad(d, m) => {
                out.push(MOVSD_LOAD);
                put_xreg(out, d);
                put_mem(out, m);
            }
            MovsdStore(m, s) => {
                out.push(MOVSD_STORE);
                put_mem(out, m);
                put_xreg(out, s);
            }
            MovapdXX(d, s) => {
                out.push(MOVAPD_XX);
                put_xreg(out, d);
                put_xreg(out, s);
            }
            MovupdLoad(d, m) => {
                out.push(MOVUPD_LOAD);
                put_xreg(out, d);
                put_mem(out, m);
            }
            MovupdStore(m, s) => {
                out.push(MOVUPD_STORE);
                put_mem(out, m);
                put_xreg(out, s);
            }
            MovqXR(x, r) => {
                out.push(MOVQ_XR);
                put_xreg(out, x);
                put_reg(out, r);
            }
            MovqRX(r, x) => {
                out.push(MOVQ_RX);
                put_reg(out, r);
                put_xreg(out, x);
            }
            Addsd(d, s) => bin_x(out, ADDSD, d, s),
            Subsd(d, s) => bin_x(out, SUBSD, d, s),
            Mulsd(d, s) => bin_x(out, MULSD, d, s),
            Divsd(d, s) => bin_x(out, DIVSD, d, s),
            Sqrtsd(d, s) => bin_x(out, SQRTSD, d, s),
            Minsd(d, s) => bin_x(out, MINSD, d, s),
            Maxsd(d, s) => bin_x(out, MAXSD, d, s),
            Addpd(d, s) => bin_x(out, ADDPD, d, s),
            Subpd(d, s) => bin_x(out, SUBPD, d, s),
            Mulpd(d, s) => bin_x(out, MULPD, d, s),
            Divpd(d, s) => bin_x(out, DIVPD, d, s),
            Sqrtpd(d, s) => bin_x(out, SQRTPD, d, s),
            Andpd(d, s) => bin_x(out, ANDPD, d, s),
            Orpd(d, s) => bin_x(out, ORPD, d, s),
            Xorpd(d, s) => bin_x(out, XORPD, d, s),
            Ucomisd(d, s) => bin_x(out, UCOMISD, d, s),
            Unpckhpd(d, s) => bin_x(out, UNPCKHPD, d, s),
            Unpcklpd(d, s) => bin_x(out, UNPCKLPD, d, s),
            Cvtsi2sd(x, r) => {
                out.push(CVTSI2SD);
                put_xreg(out, x);
                put_reg(out, r);
            }
            Cvttsd2si(r, x) => {
                out.push(CVTTSD2SI);
                put_reg(out, r);
                put_xreg(out, x);
            }
            Nop => out.push(NOP),
            Halt => out.push(HALT),
        }
    }

    /// Decode one instruction at `buf[offset..]`; returns the instruction
    /// and its encoded length.
    pub fn decode(buf: &[u8], offset: usize) -> Result<(Inst, usize), DecodeError> {
        use opcodes::*;
        use Inst::*;
        let mut c = Cursor { buf, pos: offset };
        let op = c.u8()?;
        let inst = match op {
            MOV_RR => MovRR(c.reg()?, c.reg()?),
            MOV_RI => MovRI(c.reg()?, c.i64()?),
            LOAD => Load(c.reg()?, c.mem()?),
            STORE => Store(c.mem()?, c.reg()?),
            LEA => Lea(c.reg()?, c.mem()?),
            PUSH => Push(c.reg()?),
            POP => Pop(c.reg()?),
            MOVSXD => Movsxd(c.reg()?, c.reg()?),
            CQO => Cqo,
            ADD_RR => AddRR(c.reg()?, c.reg()?),
            ADD_RI => AddRI(c.reg()?, c.i64()?),
            SUB_RR => SubRR(c.reg()?, c.reg()?),
            SUB_RI => SubRI(c.reg()?, c.i64()?),
            IMUL_RR => ImulRR(c.reg()?, c.reg()?),
            IMUL_RI => ImulRI(c.reg()?, c.i64()?),
            IDIV => Idiv(c.reg()?),
            NEG => Neg(c.reg()?),
            CMP_RR => CmpRR(c.reg()?, c.reg()?),
            CMP_RI => CmpRI(c.reg()?, c.i64()?),
            AND_RR => AndRR(c.reg()?, c.reg()?),
            OR_RR => OrRR(c.reg()?, c.reg()?),
            XOR_RR => XorRR(c.reg()?, c.reg()?),
            NOT => Not(c.reg()?),
            SHL_RI => ShlRI(c.reg()?, c.u8()?),
            SAR_RI => SarRI(c.reg()?, c.u8()?),
            SHR_RI => ShrRI(c.reg()?, c.u8()?),
            TEST_RR => TestRR(c.reg()?, c.reg()?),
            SETCC => Setcc(c.cc()?, c.reg()?),
            JMP => Jmp(c.u32()?),
            JCC => Jcc(c.cc()?, c.u32()?),
            CALL => Call(c.u32()?),
            RET => Ret,
            MOVSD_XX => MovsdXX(c.xreg()?, c.xreg()?),
            MOVSD_LOAD => MovsdLoad(c.xreg()?, c.mem()?),
            MOVSD_STORE => MovsdStore(c.mem()?, c.xreg()?),
            MOVAPD_XX => MovapdXX(c.xreg()?, c.xreg()?),
            MOVUPD_LOAD => MovupdLoad(c.xreg()?, c.mem()?),
            MOVUPD_STORE => MovupdStore(c.mem()?, c.xreg()?),
            MOVQ_XR => MovqXR(c.xreg()?, c.reg()?),
            MOVQ_RX => MovqRX(c.reg()?, c.xreg()?),
            ADDSD => Addsd(c.xreg()?, c.xreg()?),
            SUBSD => Subsd(c.xreg()?, c.xreg()?),
            MULSD => Mulsd(c.xreg()?, c.xreg()?),
            DIVSD => Divsd(c.xreg()?, c.xreg()?),
            SQRTSD => Sqrtsd(c.xreg()?, c.xreg()?),
            MINSD => Minsd(c.xreg()?, c.xreg()?),
            MAXSD => Maxsd(c.xreg()?, c.xreg()?),
            ADDPD => Addpd(c.xreg()?, c.xreg()?),
            SUBPD => Subpd(c.xreg()?, c.xreg()?),
            MULPD => Mulpd(c.xreg()?, c.xreg()?),
            DIVPD => Divpd(c.xreg()?, c.xreg()?),
            SQRTPD => Sqrtpd(c.xreg()?, c.xreg()?),
            ANDPD => Andpd(c.xreg()?, c.xreg()?),
            ORPD => Orpd(c.xreg()?, c.xreg()?),
            XORPD => Xorpd(c.xreg()?, c.xreg()?),
            UCOMISD => Ucomisd(c.xreg()?, c.xreg()?),
            UNPCKHPD => Unpckhpd(c.xreg()?, c.xreg()?),
            UNPCKLPD => Unpcklpd(c.xreg()?, c.xreg()?),
            CVTSI2SD => Cvtsi2sd(c.xreg()?, c.reg()?),
            CVTTSD2SI => Cvttsd2si(c.reg()?, c.xreg()?),
            NOP => Nop,
            HALT => Halt,
            other => return Err(DecodeError::BadOpcode(other)),
        };
        Ok((inst, c.pos - offset))
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        let mut buf = Vec::with_capacity(16);
        self.encode(&mut buf);
        buf.len()
    }

    /// The instruction category per the architecture description taxonomy.
    pub fn category(&self) -> Category {
        use Inst::*;
        match self {
            MovRR(..) | MovRI(..) | Load(..) | Store(..) | Lea(..) | Push(..) | Pop(..) => {
                Category::IntDataTransfer
            }
            Movsxd(..) | Cqo => Category::Mode64Bit,
            AddRR(..) | AddRI(..) | SubRR(..) | SubRI(..) | ImulRR(..) | ImulRI(..)
            | Idiv(..) | Neg(..) | CmpRR(..) | CmpRI(..) => Category::IntArith,
            AndRR(..) | OrRR(..) | XorRR(..) | Not(..) => Category::IntLogical,
            ShlRI(..) | SarRI(..) | ShrRI(..) => Category::ShiftRotate,
            TestRR(..) | Setcc(..) => Category::BitByte,
            Jmp(..) | Jcc(..) | Call(..) | Ret => Category::IntControlTransfer,
            MovsdXX(..) | MovsdLoad(..) | MovsdStore(..) | MovapdXX(..) | MovupdLoad(..)
            | MovupdStore(..) | MovqXR(..) | MovqRX(..) => Category::Sse2DataMovement,
            Addsd(..) | Subsd(..) | Mulsd(..) | Divsd(..) | Sqrtsd(..) | Minsd(..)
            | Maxsd(..) | Addpd(..) | Subpd(..) | Mulpd(..) | Divpd(..) | Sqrtpd(..) => {
                Category::Sse2PackedArith
            }
            Andpd(..) | Orpd(..) | Xorpd(..) => Category::Sse2Logical,
            Ucomisd(..) => Category::Sse2Compare,
            Unpckhpd(..) | Unpcklpd(..) => Category::Sse2ShuffleUnpack,
            Cvtsi2sd(..) | Cvttsd2si(..) => Category::Sse2Conversion,
            Nop | Halt => Category::MiscInstr,
        }
    }

    /// Is this a packed (2-lane) FP arithmetic instruction? One packed
    /// instruction performs two source-level FP operations — the fact the
    /// PBound source-only comparison cannot see.
    pub fn is_packed_fp(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Addpd(..) | Subpd(..) | Mulpd(..) | Divpd(..) | Sqrtpd(..)
        )
    }

    /// Explicit data-memory traffic of one execution: `(is_store, bytes)`.
    ///
    /// This is the byte-accounting contract shared by the static memory
    /// models (`mira-mem` / `ModelOp::MemAcc`) and the VM cache simulator:
    /// only instructions with an explicit memory operand count, with packed
    /// (`movupd`) accesses at their full 16-byte width. `push`/`pop` and
    /// the implicit return-address traffic of `call`/`ret` are *excluded*
    /// on both sides — roofline bytes measure data movement, not the stack
    /// engine.
    pub fn memory_bytes(&self) -> Option<(bool, u32)> {
        use Inst::*;
        match self {
            Load(..) | MovsdLoad(..) => Some((false, 8)),
            Store(..) | MovsdStore(..) => Some((true, 8)),
            MovupdLoad(..) => Some((false, 16)),
            MovupdStore(..) => Some((true, 16)),
            _ => None,
        }
    }

    /// The explicit memory operand, for instructions that have one. `Lea`
    /// forms an address without accessing memory, so it returns `None` —
    /// this accessor exists for classifying *traffic*, mirroring
    /// [`Inst::memory_bytes`].
    pub fn mem_operand(&self) -> Option<Mem> {
        use Inst::*;
        match self {
            Load(_, m) | MovsdLoad(_, m) | MovupdLoad(_, m) => Some(*m),
            Store(m, _) | MovsdStore(m, _) | MovupdStore(m, _) => Some(*m),
            _ => None,
        }
    }

    /// Does this instruction's explicit memory operand address the stack
    /// frame (`rbp`/`rsp`-based: locals, spill slots, stack-passed
    /// arguments) rather than heap data? Frame traffic is register-
    /// allocation artifact — it stays resident in L1 and never pressures
    /// the deeper memory ceilings — so the roofline models account it
    /// separately from array data. `vcc` codegen addresses every frame
    /// slot through `rbp` (or `rsp`), and array elements only ever through
    /// pointer registers, so the base register decides.
    pub fn is_frame_access(&self) -> bool {
        matches!(self.mem_operand(), Some(m) if m.base == RBP || m.base == RSP)
    }

    /// Source-level floating-point operations performed by one execution:
    /// 1 for scalar double arithmetic, 2 for packed (both lanes), 0
    /// otherwise. The numerator of bytes-based arithmetic intensity
    /// (FLOPs/byte) — unlike raw FPI, it credits a packed instruction with
    /// both of the operations it retires.
    pub fn flop_count(&self) -> u32 {
        use Inst::*;
        match self {
            Addsd(..) | Subsd(..) | Mulsd(..) | Divsd(..) | Sqrtsd(..) | Minsd(..)
            | Maxsd(..) => 1,
            Addpd(..) | Subpd(..) | Mulpd(..) | Divpd(..) | Sqrtpd(..) => 2,
            _ => 0,
        }
    }

    /// Is this a control-transfer instruction that ends a basic block?
    pub fn is_terminator(&self) -> bool {
        use Inst::*;
        matches!(self, Jmp(..) | Jcc(..) | Ret | Halt)
    }

    /// Assembly-style mnemonic (without operand-form suffixes).
    pub fn mnemonic(&self) -> &'static str {
        use Inst::*;
        match self {
            MovRR(..) | MovRI(..) | Load(..) | Store(..) => "mov",
            Lea(..) => "lea",
            Push(..) => "push",
            Pop(..) => "pop",
            Movsxd(..) => "movsxd",
            Cqo => "cqo",
            AddRR(..) | AddRI(..) => "add",
            SubRR(..) | SubRI(..) => "sub",
            ImulRR(..) | ImulRI(..) => "imul",
            Idiv(..) => "idiv",
            Neg(..) => "neg",
            CmpRR(..) | CmpRI(..) => "cmp",
            AndRR(..) => "and",
            OrRR(..) => "or",
            XorRR(..) => "xor",
            Not(..) => "not",
            ShlRI(..) => "shl",
            SarRI(..) => "sar",
            ShrRI(..) => "shr",
            TestRR(..) => "test",
            Setcc(..) => "setcc",
            Jmp(..) => "jmp",
            Jcc(..) => "jcc",
            Call(..) => "call",
            Ret => "ret",
            MovsdXX(..) | MovsdLoad(..) | MovsdStore(..) => "movsd",
            MovapdXX(..) => "movapd",
            MovupdLoad(..) | MovupdStore(..) => "movupd",
            MovqXR(..) | MovqRX(..) => "movq",
            Addsd(..) => "addsd",
            Subsd(..) => "subsd",
            Mulsd(..) => "mulsd",
            Divsd(..) => "divsd",
            Sqrtsd(..) => "sqrtsd",
            Minsd(..) => "minsd",
            Maxsd(..) => "maxsd",
            Addpd(..) => "addpd",
            Subpd(..) => "subpd",
            Mulpd(..) => "mulpd",
            Divpd(..) => "divpd",
            Sqrtpd(..) => "sqrtpd",
            Andpd(..) => "andpd",
            Orpd(..) => "orpd",
            Xorpd(..) => "xorpd",
            Ucomisd(..) => "ucomisd",
            Unpckhpd(..) => "unpckhpd",
            Unpcklpd(..) => "unpcklpd",
            Cvtsi2sd(..) => "cvtsi2sd",
            Cvttsd2si(..) => "cvttsd2si",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            MovRR(d, s) => write!(f, "mov {d}, {s}"),
            MovRI(d, v) => write!(f, "mov {d}, {v}"),
            Load(d, m) => write!(f, "mov {d}, qword {m}"),
            Store(m, s) => write!(f, "mov qword {m}, {s}"),
            Lea(d, m) => write!(f, "lea {d}, {m}"),
            Push(r) => write!(f, "push {r}"),
            Pop(r) => write!(f, "pop {r}"),
            Movsxd(d, s) => write!(f, "movsxd {d}, {s}"),
            Cqo => write!(f, "cqo"),
            AddRR(d, s) => write!(f, "add {d}, {s}"),
            AddRI(d, v) => write!(f, "add {d}, {v}"),
            SubRR(d, s) => write!(f, "sub {d}, {s}"),
            SubRI(d, v) => write!(f, "sub {d}, {v}"),
            ImulRR(d, s) => write!(f, "imul {d}, {s}"),
            ImulRI(d, v) => write!(f, "imul {d}, {v}"),
            Idiv(r) => write!(f, "idiv {r}"),
            Neg(r) => write!(f, "neg {r}"),
            CmpRR(a, b) => write!(f, "cmp {a}, {b}"),
            CmpRI(a, v) => write!(f, "cmp {a}, {v}"),
            AndRR(d, s) => write!(f, "and {d}, {s}"),
            OrRR(d, s) => write!(f, "or {d}, {s}"),
            XorRR(d, s) => write!(f, "xor {d}, {s}"),
            Not(r) => write!(f, "not {r}"),
            ShlRI(r, k) => write!(f, "shl {r}, {k}"),
            SarRI(r, k) => write!(f, "sar {r}, {k}"),
            ShrRI(r, k) => write!(f, "shr {r}, {k}"),
            TestRR(a, b) => write!(f, "test {a}, {b}"),
            Setcc(cc, r) => write!(f, "set{} {r}", cc.mnemonic()),
            Jmp(t) => write!(f, "jmp {t:#x}"),
            Jcc(cc, t) => write!(f, "j{} {t:#x}", cc.mnemonic()),
            Call(sym) => write!(f, "call fn#{sym}"),
            Ret => write!(f, "ret"),
            MovsdXX(d, s) => write!(f, "movsd {d}, {s}"),
            MovsdLoad(d, m) => write!(f, "movsd {d}, qword {m}"),
            MovsdStore(m, s) => write!(f, "movsd qword {m}, {s}"),
            MovapdXX(d, s) => write!(f, "movapd {d}, {s}"),
            MovupdLoad(d, m) => write!(f, "movupd {d}, xmmword {m}"),
            MovupdStore(m, s) => write!(f, "movupd xmmword {m}, {s}"),
            MovqXR(x, r) => write!(f, "movq {x}, {r}"),
            MovqRX(r, x) => write!(f, "movq {r}, {x}"),
            Addsd(d, s) => write!(f, "addsd {d}, {s}"),
            Subsd(d, s) => write!(f, "subsd {d}, {s}"),
            Mulsd(d, s) => write!(f, "mulsd {d}, {s}"),
            Divsd(d, s) => write!(f, "divsd {d}, {s}"),
            Sqrtsd(d, s) => write!(f, "sqrtsd {d}, {s}"),
            Minsd(d, s) => write!(f, "minsd {d}, {s}"),
            Maxsd(d, s) => write!(f, "maxsd {d}, {s}"),
            Addpd(d, s) => write!(f, "addpd {d}, {s}"),
            Subpd(d, s) => write!(f, "subpd {d}, {s}"),
            Mulpd(d, s) => write!(f, "mulpd {d}, {s}"),
            Divpd(d, s) => write!(f, "divpd {d}, {s}"),
            Sqrtpd(d, s) => write!(f, "sqrtpd {d}, {s}"),
            Andpd(d, s) => write!(f, "andpd {d}, {s}"),
            Orpd(d, s) => write!(f, "orpd {d}, {s}"),
            Xorpd(d, s) => write!(f, "xorpd {d}, {s}"),
            Ucomisd(a, b) => write!(f, "ucomisd {a}, {b}"),
            Unpckhpd(d, s) => write!(f, "unpckhpd {d}, {s}"),
            Unpcklpd(d, s) => write!(f, "unpcklpd {d}, {s}"),
            Cvtsi2sd(x, r) => write!(f, "cvtsi2sd {x}, {r}"),
            Cvttsd2si(r, x) => write!(f, "cvttsd2si {r}, {x}"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_instructions() -> Vec<Inst> {
        use Inst::*;
        vec![
            MovRR(Reg(1), Reg(2)),
            MovRI(Reg(3), -123456789),
            Load(Reg(4), Mem::base_index(Reg(1), Reg(2), 8, -16)),
            Store(Mem::base_disp(RBP, -8), Reg(0)),
            Lea(Reg(5), Mem::base_index(Reg(0), Reg(3), 4, 100)),
            Push(RBP),
            Pop(RBP),
            Movsxd(Reg(1), Reg(2)),
            Cqo,
            AddRR(Reg(1), Reg(2)),
            AddRI(Reg(1), 42),
            SubRI(RSP, 64),
            ImulRI(Reg(2), 8),
            Idiv(Reg(3)),
            Neg(Reg(4)),
            CmpRI(Reg(1), 10),
            XorRR(Reg(0), Reg(0)),
            ShlRI(Reg(1), 3),
            TestRR(Reg(1), Reg(1)),
            Setcc(Cc::L, Reg(2)),
            Jmp(0xdeadbe),
            Jcc(Cc::Ge, 0x1234),
            Call(7),
            Ret,
            MovsdLoad(XReg(1), Mem::base_index(Reg(1), Reg(2), 8, 0)),
            MovsdStore(Mem::base(Reg(3)), XReg(2)),
            MovapdXX(XReg(3), XReg(4)),
            MovupdLoad(XReg(5), Mem::base_disp(Reg(1), 16)),
            MovqXR(XReg(1), Reg(1)),
            Addsd(XReg(0), XReg(1)),
            Mulpd(XReg(2), XReg(3)),
            Sqrtsd(XReg(4), XReg(4)),
            Andpd(XReg(1), XReg(2)),
            Ucomisd(XReg(0), XReg(1)),
            Unpckhpd(XReg(0), XReg(0)),
            Unpcklpd(XReg(1), XReg(1)),
            Cvtsi2sd(XReg(1), Reg(2)),
            Cvttsd2si(Reg(3), XReg(4)),
            Nop,
            Halt,
        ]
    }

    #[test]
    fn encode_decode_roundtrip_samples() {
        for inst in sample_instructions() {
            let mut buf = Vec::new();
            inst.encode(&mut buf);
            let (decoded, len) = Inst::decode(&buf, 0).unwrap();
            assert_eq!(decoded, inst);
            assert_eq!(len, buf.len());
            assert_eq!(len, inst.encoded_len());
        }
    }

    #[test]
    fn decode_stream_of_instructions() {
        let insts = sample_instructions();
        let mut buf = Vec::new();
        for i in &insts {
            i.encode(&mut buf);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (i, len) = Inst::decode(&buf, pos).unwrap();
            decoded.push(i);
            pos += len;
        }
        assert_eq!(decoded, insts);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(Inst::decode(&[], 0), Err(DecodeError::Truncated));
        assert_eq!(Inst::decode(&[0xff], 0), Err(DecodeError::BadOpcode(0xff)));
        assert_eq!(
            Inst::decode(&[opcodes::MOV_RR, 99, 0], 0),
            Err(DecodeError::BadOperand)
        );
        assert_eq!(
            Inst::decode(&[opcodes::MOV_RI, 1, 0, 0], 0),
            Err(DecodeError::Truncated)
        );
        let mut buf = vec![opcodes::LOAD, 1];
        buf.extend_from_slice(&[2, 1, 3, 3]); // has_index=1, scale=3 → bad
        buf.extend_from_slice(&0i32.to_le_bytes());
        assert_eq!(Inst::decode(&buf, 0), Err(DecodeError::BadOperand));
    }

    #[test]
    fn categories_match_taxonomy() {
        use Inst::*;
        assert_eq!(MovRR(Reg(0), Reg(1)).category(), Category::IntDataTransfer);
        assert_eq!(Movsxd(Reg(0), Reg(1)).category(), Category::Mode64Bit);
        assert_eq!(AddRR(Reg(0), Reg(1)).category(), Category::IntArith);
        assert_eq!(Jmp(0).category(), Category::IntControlTransfer);
        assert_eq!(
            MovsdLoad(XReg(0), Mem::base(Reg(0))).category(),
            Category::Sse2DataMovement
        );
        assert_eq!(
            Addsd(XReg(0), XReg(1)).category(),
            Category::Sse2PackedArith
        );
        assert_eq!(
            Addpd(XReg(0), XReg(1)).category(),
            Category::Sse2PackedArith
        );
        assert_eq!(Andpd(XReg(0), XReg(1)).category(), Category::Sse2Logical);
        assert_eq!(
            Cvtsi2sd(XReg(0), Reg(1)).category(),
            Category::Sse2Conversion
        );
        assert_eq!(Setcc(Cc::E, Reg(0)).category(), Category::BitByte);
    }

    #[test]
    fn packed_fp_detection() {
        use Inst::*;
        assert!(Addpd(XReg(0), XReg(1)).is_packed_fp());
        assert!(!Addsd(XReg(0), XReg(1)).is_packed_fp());
        assert!(!MovapdXX(XReg(0), XReg(1)).is_packed_fp());
    }

    #[test]
    fn memory_bytes_contract() {
        use Inst::*;
        assert_eq!(Load(Reg(0), Mem::base(Reg(1))).memory_bytes(), Some((false, 8)));
        assert_eq!(Store(Mem::base(Reg(1)), Reg(0)).memory_bytes(), Some((true, 8)));
        assert_eq!(
            MovsdLoad(XReg(0), Mem::base(Reg(1))).memory_bytes(),
            Some((false, 8))
        );
        assert_eq!(
            MovupdStore(Mem::base(Reg(1)), XReg(0)).memory_bytes(),
            Some((true, 16))
        );
        // stack-engine and implicit traffic is excluded by contract
        assert_eq!(Push(Reg(0)).memory_bytes(), None);
        assert_eq!(Pop(Reg(0)).memory_bytes(), None);
        assert_eq!(Call(0).memory_bytes(), None);
        assert_eq!(Ret.memory_bytes(), None);
        assert_eq!(Lea(Reg(0), Mem::base(Reg(1))).memory_bytes(), None);
    }

    #[test]
    fn frame_access_classification() {
        use Inst::*;
        // rbp/rsp-based operands are frame traffic …
        assert!(Load(Reg(0), Mem::base_disp(RBP, -8)).is_frame_access());
        assert!(MovsdStore(Mem::base_disp(RBP, -16), XReg(0)).is_frame_access());
        assert!(Load(Reg(0), Mem::base(RSP)).is_frame_access());
        // … pointer-register operands are data traffic …
        assert!(!Load(Reg(0), Mem::base(Reg(1))).is_frame_access());
        assert!(!MovupdLoad(XReg(0), Mem::base(Reg(2))).is_frame_access());
        // … and instructions without a memory operand are neither
        assert!(!Push(Reg(0)).is_frame_access());
        assert!(Lea(Reg(0), Mem::base(RBP)).mem_operand().is_none());
        assert_eq!(
            Store(Mem::base(Reg(3)), Reg(0)).mem_operand(),
            Some(Mem::base(Reg(3)))
        );
    }

    #[test]
    fn flop_counts() {
        use Inst::*;
        assert_eq!(Addsd(XReg(0), XReg(1)).flop_count(), 1);
        assert_eq!(Sqrtsd(XReg(0), XReg(1)).flop_count(), 1);
        assert_eq!(Mulpd(XReg(0), XReg(1)).flop_count(), 2);
        assert_eq!(Andpd(XReg(0), XReg(1)).flop_count(), 0);
        assert_eq!(Ucomisd(XReg(0), XReg(1)).flop_count(), 0);
        assert_eq!(MovsdLoad(XReg(0), Mem::base(Reg(1))).flop_count(), 0);
    }

    #[test]
    fn terminator_detection() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jmp(0).is_terminator());
        assert!(Inst::Jcc(Cc::E, 0).is_terminator());
        assert!(!Inst::Call(0).is_terminator());
        assert!(!Inst::Nop.is_terminator());
    }

    #[test]
    fn cc_negation_involutive() {
        use Cc::*;
        for cc in [E, Ne, L, Le, G, Ge, B, Be, A, Ae] {
            assert_eq!(cc.negate().negate(), cc);
            assert_ne!(cc.negate(), cc);
        }
    }

    #[test]
    fn display_smoke() {
        let i = Inst::Load(Reg(4), Mem::base_index(Reg(1), Reg(2), 8, -16));
        assert_eq!(i.to_string(), "mov r4, qword [r1 + r2*8 - 16]");
        assert_eq!(Inst::Setcc(Cc::L, Reg(2)).to_string(), "setl r2");
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..16).prop_map(Reg)
    }

    fn arb_xreg() -> impl Strategy<Value = XReg> {
        (0u8..16).prop_map(XReg)
    }

    fn arb_mem() -> impl Strategy<Value = Mem> {
        (
            arb_reg(),
            proptest::option::of((arb_reg(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8)])),
            any::<i32>(),
        )
            .prop_map(|(base, index, disp)| Mem { base, index, disp })
    }

    fn arb_cc() -> impl Strategy<Value = Cc> {
        (0u8..10).prop_map(|v| Cc::from_u8(v).unwrap())
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        use Inst::*;
        prop_oneof![
            (arb_reg(), arb_reg()).prop_map(|(a, b)| MovRR(a, b)),
            (arb_reg(), any::<i64>()).prop_map(|(a, b)| MovRI(a, b)),
            (arb_reg(), arb_mem()).prop_map(|(a, b)| Load(a, b)),
            (arb_mem(), arb_reg()).prop_map(|(a, b)| Store(a, b)),
            (arb_reg(), arb_mem()).prop_map(|(a, b)| Lea(a, b)),
            (arb_reg(), any::<i64>()).prop_map(|(a, b)| AddRI(a, b)),
            (arb_reg(), arb_reg()).prop_map(|(a, b)| ImulRR(a, b)),
            (arb_reg(), 0u8..64).prop_map(|(a, b)| ShlRI(a, b)),
            (arb_cc(), arb_reg()).prop_map(|(a, b)| Setcc(a, b)),
            any::<u32>().prop_map(Jmp),
            (arb_cc(), any::<u32>()).prop_map(|(a, b)| Jcc(a, b)),
            any::<u32>().prop_map(Call),
            (arb_xreg(), arb_mem()).prop_map(|(a, b)| MovsdLoad(a, b)),
            (arb_mem(), arb_xreg()).prop_map(|(a, b)| MovupdStore(a, b)),
            (arb_xreg(), arb_xreg()).prop_map(|(a, b)| Mulpd(a, b)),
            (arb_xreg(), arb_xreg()).prop_map(|(a, b)| Divsd(a, b)),
            (arb_xreg(), arb_reg()).prop_map(|(a, b)| Cvtsi2sd(a, b)),
            Just(Ret),
            Just(Cqo),
            Just(Halt),
        ]
    }

    proptest! {
        #[test]
        fn prop_roundtrip(inst in arb_inst()) {
            let mut buf = Vec::new();
            inst.encode(&mut buf);
            let (decoded, len) = Inst::decode(&buf, 0).unwrap();
            prop_assert_eq!(decoded, inst);
            prop_assert_eq!(len, buf.len());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
            let _ = Inst::decode(&bytes, 0);
        }
    }
}
