//! # mira — facade crate for the Mira reproduction workspace
//!
//! Re-exports the sub-crates of the workspace so downstream users (and the
//! examples/integration tests in this repository) can depend on one crate:
//!
//! * [`arch`] — the 64-category instruction taxonomy and machine model;
//! * [`minic`] — the MiniC front-end (lexer, parser, sema, source AST);
//! * [`isa`] — the VX86 instruction set (encode/decode, categories);
//! * [`vobj`] — the VOBJ object container, line tables, disassembler and
//!   basic-block boundary analysis;
//! * [`vcc`] — the MiniC → VX86 compiler (optionally vectorizing);
//! * [`sym`] — exact rational symbolic polynomials;
//! * [`poly`] — parametric polyhedral counting;
//! * [`model`] — generated performance models (incl. Python emission);
//! * [`pbound`] — the source-only baseline analyzer;
//! * [`vm`] — the instrumented VX86 interpreter (TAU/PAPI stand-in);
//! * [`mem`] — static memory-traffic models (bytes, distinct cache
//!   lines) and the VM cache simulator for bytes-based roofline work;
//! * [`core`] — the end-to-end static analysis pipeline;
//! * [`workloads`] — STREAM / DGEMM / miniFE and the survey corpus.

pub use mira_arch as arch;
pub use mira_core as core;
pub use mira_isa as isa;
pub use mira_mem as mem;
pub use mira_minic as minic;
pub use mira_model as model;
pub use mira_poly as poly;
pub use mira_pbound as pbound;
pub use mira_sym as sym;
pub use mira_vcc as vcc;
pub use mira_vm as vm;
pub use mira_vobj as vobj;
pub use mira_workloads as workloads;
