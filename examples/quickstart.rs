//! Quickstart: analyze a kernel statically and predict its instruction
//! counts for inputs that were never executed.
//!
//! Run with: `cargo run -p mira-bench --example quickstart`

use mira_core::{analyze_source, MiraOptions};
use mira_sym::bindings;

const SRC: &str = r#"
double dot(int n, double* x, double* y) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += x[i] * y[i];
    }
    return s;
}
"#;

fn main() {
    // One static analysis: parse, compile, disassemble, bridge, model.
    let analysis = analyze_source(SRC, &MiraOptions::default()).unwrap();
    println!("model parameters: {:?}\n", analysis.parameters());

    // Evaluate the parametric model for several problem sizes — no
    // execution of the program takes place.
    for n in [1_000i128, 1_000_000, 100_000_000] {
        let report = analysis.report("dot", &bindings(&[("n", n)])).unwrap();
        println!(
            "n = {n:>11}: FPI = {:>12}  total instructions = {:>14}",
            report.fpi(&analysis.arch),
            report.total()
        );
    }

    // The closed-form FPI expression itself:
    let expr = analysis.model.fpi_expr("dot", &analysis.arch).unwrap();
    println!("\nclosed-form FPI(dot) = {expr}");
}
