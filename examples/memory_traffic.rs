//! `mira-mem` end to end: static bytes/lines models against the VM cache
//! simulator on the STREAM triad.
//!
//! Run with: `cargo run --release --example memory_traffic`

use mira_sym::bindings;
use mira_workloads::memval;

fn main() {
    let (n, reps) = (4096, 3);
    let row = memval::triad_row(n, reps, false);

    println!("STREAM triad, n = {n}, reps = {reps}\n");
    println!("static model (closed forms evaluated):");
    println!("  load bytes  = {}", row.static_load_bytes);
    println!("  store bytes = {}", row.static_store_bytes);
    println!("  FLOPs       = {}", row.static_flops);
    println!("  distinct cache lines (cold footprint) = {}", row.static_lines);
    println!("  bytes-based arithmetic intensity      = {:.4}", row.bytes_ai);

    let d = &row.dynamic;
    println!("\ncache simulator (L1/L2, LRU, write-allocate):");
    println!("  load bytes  = {}", d.load_bytes);
    println!("  store bytes = {}", d.store_bytes);
    println!(
        "  L1: {} hits / {} misses ({} data fills, {} stack fills)",
        d.l1.hits, d.l1.misses, d.data_l1_fills, d.stack_l1_fills
    );
    println!("  L2: {} hits / {} misses", d.l2.hits, d.l2.misses);

    println!(
        "\nstatic == dynamic bytes: {}",
        if row.bytes_exact() { "EXACT" } else { "MISMATCH" }
    );

    // the same closed forms, symbolically — what a user can inspect
    let triad = mira_core::analyze_source(
        memval::TRIAD_SRC,
        &mira_core::MiraOptions::default(),
    )
    .unwrap();
    let loads = triad.model.load_bytes_expr("triad").unwrap();
    let b = bindings(&[("n", n as i128), ("reps", reps as i128)]);
    println!("\nclosed-form load bytes(n, reps) evaluates to {}", loads.eval_count(&b).unwrap());
    let fp = mira_mem::footprints(&triad, "triad");
    for a in &fp.arrays {
        println!(
            "  array {:<2} footprint: {} lines{}",
            a.array,
            a.lines_expr(64).eval_count(&b).unwrap(),
            if a.exact_for(64) { "" } else { " (approx)" }
        );
    }
}
