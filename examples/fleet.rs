//! `MachineFleet` end to end: serve a *directory* of machine
//! descriptions, compile DGEMM and triad against every machine, answer
//! queries through the bounded answer cache, then edit one `*.ini` on
//! disk and hot-reload — the changed machine's models are recompiled
//! and swapped atomically under stable `KernelId`s, the cache
//! self-invalidates, and the new ceilings are served immediately.
//!
//! Run with: `cargo run --release --example fleet`

use std::fs;

use mira_roofline::MemLevel;
use mira_serve::{machines, AnswerCache, MachineFleet, Scratch};

fn main() {
    // a throwaway fleet directory with the two bundled descriptions
    let dir = std::env::temp_dir().join(format!("mira_fleet_example_{}", std::process::id()));
    fs::create_dir_all(&dir).expect("fleet dir creates");
    fs::write(
        dir.join("generic.ini"),
        mira_arch::desc::DEFAULT_DESCRIPTION,
    )
    .expect("generic.ini writes");
    fs::write(dir.join("avx2.ini"), machines::AVX2_FMA_DESCRIPTION).expect("avx2.ini writes");

    // load every *.ini, then admit each kernel against every machine
    let mut fleet = MachineFleet::load(&dir).expect("fleet loads");
    fleet
        .admit_source("triad", mira_workloads::memval::TRIAD_SRC)
        .expect("triad admits on every machine");
    fleet
        .admit_source("dgemm", mira_workloads::dgemm::DGEMM_SRC)
        .expect("dgemm admits on every machine");
    println!(
        "fleet over {}: {} machines x {} kernels = {} compiled models",
        dir.display(),
        fleet.machines().count(),
        fleet.funcs().count(),
        fleet.index().len(),
    );

    // answer a triad query on the AVX2 machine, through the cache
    let id = fleet
        .find("triad", machines::AVX2_FMA)
        .expect("admitted above");
    let k = fleet.index().kernel(id).expect("kernel exists");
    let values: Vec<i128> = k
        .params()
        .iter()
        .map(|p| if p == "n" { 1 << 16 } else { 1 })
        .collect();
    let q = fleet.index().query(id, &values).expect("query builds");
    let mut cache = AnswerCache::new(1024);
    let mut s = Scratch::new();
    let before = fleet
        .index()
        .place_cached(&q, &mut cache, &mut s)
        .expect("places");
    let dram = MemLevel::Dram.index();
    println!(
        "triad on {} at n = 65536: {} ({} DRAM cycles)",
        machines::AVX2_FMA,
        before,
        before.mem_cycles[dram],
    );

    // edit the machine on disk — double its DRAM bandwidth — and reload
    let edited = machines::AVX2_FMA_DESCRIPTION.replace(
        "[bandwidth dram]\nbytes_per_cycle = 8",
        "[bandwidth dram]\nbytes_per_cycle = 16",
    );
    fs::write(dir.join("avx2.ini"), edited).expect("avx2.ini rewrites");
    let report = fleet.reload().expect("reload swaps the edited machine");
    println!(
        "reload: changed = {:?}, {} models recompiled (ids stable)",
        report.changed, report.recompiled,
    );

    // same query, same id, same cache handle: the swap generation
    // advanced, the cache cleared itself, and the new model answers
    let after = fleet
        .index()
        .place_cached(&q, &mut cache, &mut s)
        .expect("places after reload");
    println!(
        "after reload: {} ({} DRAM cycles, cache invalidations = {})",
        after,
        after.mem_cycles[dram],
        cache.probe().invalidations,
    );
    assert!(
        after.mem_cycles[dram] < before.mem_cycles[dram],
        "doubled bandwidth halves the DRAM bound"
    );

    // one sharded pass: where does every kernel leave its regime on
    // every machine?
    println!("crossover table (n in [2, 64], reps = 1):");
    for row in fleet.index().crossover_table("n", &[("reps", 1)], 2, 64, 4) {
        match row.result {
            Ok(Some(x)) => println!(
                "  {:>5} on {:<14} leaves {} for {} at n = {}",
                row.func, row.machine, x.from, x.to, x.value
            ),
            Ok(None) => println!(
                "  {:>5} on {:<14} holds its regime across the window",
                row.func, row.machine
            ),
            Err(e) => println!("  {:>5} on {:<14} refused: {e}", row.func, row.machine),
        }
    }

    let _ = fs::remove_dir_all(&dir);
}
