//! `mira-serve` end to end: compile DGEMM's placement model for two
//! machine descriptions, sweep n = 1..512 through the compiled
//! evaluator, and print cycle bounds, bound classifications, and every
//! size at which the kernel changes regime — plus the bisected
//! crossover, answered without ever re-walking the symbolic trees.
//!
//! Run with: `cargo run --release --example serve`

use mira_core::{analyze_source, MiraOptions};
use mira_serve::{machines, ServeIndex};

fn main() {
    // one index, one kernel, two machines: analyze DGEMM under each
    // architecture description and admit both compiled models
    let mut index = ServeIndex::new();
    let arches = [
        mira_arch::ArchDescription::default(),
        machines::avx2_fma().expect("bundled description parses"),
    ];
    for arch in &arches {
        let opts = MiraOptions {
            arch: arch.clone(),
            ..Default::default()
        };
        let analysis =
            analyze_source(mira_workloads::dgemm::DGEMM_SRC, &opts).expect("dgemm analyzes");
        index.add(&analysis, "dgemm").expect("dgemm admits");
    }

    for arch in &arches {
        let machine = &arch.machine.name;
        let id = index.find("dgemm", machine).expect("admitted above");
        let k = index.kernel(id).expect("kernel exists");
        println!("dgemm on {machine} ({} ops compiled, {} CSE reuses):",
            k.program().ops_len(), k.program().cse_hits());

        // full sweep n = 1..=512 (reps = 1); report regime changes and
        // a few landmark sizes
        // every parameter pinned to 1; the sweep rebinds "n" per size
        let base: Vec<i128> = k.params().iter().map(|_| 1).collect();
        let mut last = None;
        let landmarks = [1i128, 8, 64, 512];
        for (n, r) in index
            .sweep(id, "n", &base, 1, 512)
            .expect("sweep builds")
        {
            let p = r.expect("placement evaluates");
            let regime = format!("{}", p.binding);
            let changed = last.as_ref() != Some(&regime);
            if changed || landmarks.contains(&n) {
                println!(
                    "  n = {n:>3}: {} {p}",
                    if changed { "->" } else { "  " },
                );
            }
            last = Some(regime);
        }

        // the same regime exit, solved by bisection over the compiled
        // evaluator instead of read off the sweep
        match index.crossover(id, "n", &base, 2, 64) {
            Ok(Some(x)) => println!(
                "  crossover: leaves {} for {} at n = {}\n",
                x.from, x.to, x.value
            ),
            Ok(None) => println!("  crossover: no regime change in [2, 64]\n"),
            Err(e) => println!("  crossover refused: {e}\n"),
        }
    }
}
