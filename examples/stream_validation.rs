//! STREAM validation: the paper's Table-III experiment end to end — static
//! model vs instrumented execution of the same binary.
//!
//! Run with: `cargo run --release -p mira-bench --example stream_validation`

use mira_workloads::stream::Stream;

fn main() {
    let s = Stream::new();
    println!("{:>10} {:>14} {:>14} {:>9}", "n", "dynamic FPI", "static FPI", "error");
    for n in [50_000i64, 100_000, 200_000] {
        let row = s.row(n, 10);
        println!(
            "{:>10} {:>14} {:>14} {:>8.4}%",
            n,
            row.dynamic_fpi,
            row.static_fpi,
            row.error_pct()
        );
    }
    println!("\nThe residual error is exactly the hidden libm work (sqrt in the");
    println!("validation step) that static analysis cannot see — paper SIV-D1.");
}
