//! Annotations (paper §III-C4): modeling what static analysis cannot see —
//! data-dependent trip counts, estimated branch fractions, skipped scopes.
//!
//! Run with: `cargo run -p mira-bench --example annotations`

use mira_core::{analyze_source, MiraOptions};
use mira_sym::bindings;

const SRC: &str = r#"
double process(int n, double* a, double threshold, int bound) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
#pragma @Annotation {branch_frac: 0.3}
        if (a[i] > threshold) {
            s += a[i] * 2.0;
        }
    }
    int k = 0;
#pragma @Annotation {lp_iters: refine_iters}
    while (s > 1.0) {
        s = s * 0.5;
        k++;
    }
#pragma @Annotation {skip: yes}
    for (int i = 0; i < bound; i++) {
        s += a[i];
    }
    return s;
}
"#;

fn main() {
    let analysis = analyze_source(SRC, &MiraOptions::default()).unwrap();
    println!("parameters: {:?}", analysis.parameters());
    println!("warnings:   {:?}\n", analysis.warnings);
    for (n, refine) in [(1000i128, 10i128), (1000, 40), (10_000, 10)] {
        let report = analysis
            .report("process", &bindings(&[("n", n), ("refine_iters", refine)]))
            .unwrap();
        println!(
            "n={n:>6} refine_iters={refine:>3}:  FPI={:>7}  total={:>8}",
            report.fpi(&analysis.arch),
            report.total()
        );
    }
    println!("\nThe branch body is scaled by 0.3; the while loop by refine_iters;");
    println!("the skipped loop contributes nothing.");
}
