//! Emit the generated model as Python (the paper's Fig. 5 output format).
//!
//! Run with: `cargo run -p mira-bench --example python_model > model.py`

use mira_core::{analyze_source, MiraOptions};

const SRC: &str = r#"
void waxpby(int n, double alpha, double* x, double beta, double* y, double* w) {
    for (int i = 0; i < n; i++) {
        w[i] = alpha * x[i] + beta * y[i];
    }
}

double driver(int n, double* x, double* y, double* w) {
    waxpby(n, 1.0, x, 2.0, y, w);
    return w[0];
}
"#;

fn main() {
    let analysis = analyze_source(SRC, &MiraOptions::default()).unwrap();
    println!("{}", analysis.python_model());
}
