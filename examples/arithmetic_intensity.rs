//! Derived-metric prediction (paper §IV-D2): arithmetic intensity of
//! miniFE's cg_solve, both ways —
//!
//! * **instruction-based** (the paper's Fig. 6 metric): FPI over FP
//!   data-movement instructions, from the architecture description's
//!   metric groups;
//! * **bytes-based** (the roofline x-axis, new with `mira-mem`): FLOPs
//!   over bytes moved through explicit memory operands, from the static
//!   memory-traffic model.
//!
//! Run with: `cargo run --release --example arithmetic_intensity`

use mira_sym::bindings;
use mira_workloads::minife::MiniFe;

fn main() {
    let m = MiniFe::new();
    let (nx, ny, nz) = (10, 10, 10);
    let est = m.estimate_iters(nx, ny, nz);
    let binds = bindings(&[
        ("n", (nx * ny * nz) as i128),
        ("nnz_row_milli", MiniFe::nnz_row_milli(nx, ny, nz) as i128),
        ("cg_iters", est as i128),
    ]);
    let report = m.analysis.report("cg_solve", &binds).unwrap();
    println!("cg_solve on a {nx}x{ny}x{nz} grid (estimated {est} CG iterations):\n");
    for (name, count) in report.category_table() {
        println!("  {name:<42} {count:>12}");
    }
    println!(
        "\n  instruction arithmetic intensity = FPI / FP movement = {:.2}  (paper: 0.53)",
        report.instruction_arithmetic_intensity(&m.analysis.arch)
    );
    println!(
        "  bytes-based arithmetic intensity = FLOPs / byte      = {:.4}",
        report.bytes_arithmetic_intensity()
    );
    println!(
        "      ({} FLOPs over {} B loaded + {} B stored)",
        report.flops, report.load_bytes, report.store_bytes
    );
}
