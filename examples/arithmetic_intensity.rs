//! Derived-metric prediction (paper §IV-D2): instruction-based arithmetic
//! intensity of miniFE's cg_solve from the architecture description file's
//! metric groups.
//!
//! Run with: `cargo run --release -p mira-bench --example arithmetic_intensity`

use mira_sym::bindings;
use mira_workloads::minife::MiniFe;

fn main() {
    let m = MiniFe::new();
    let (nx, ny, nz) = (10, 10, 10);
    let est = m.estimate_iters(nx, ny, nz);
    let binds = bindings(&[
        ("n", (nx * ny * nz) as i128),
        ("nnz_row_milli", MiniFe::nnz_row_milli(nx, ny, nz) as i128),
        ("cg_iters", est as i128),
    ]);
    let report = m.analysis.report("cg_solve", &binds).unwrap();
    println!("cg_solve on a {nx}x{ny}x{nz} grid (estimated {est} CG iterations):\n");
    for (name, count) in report.category_table() {
        println!("  {name:<42} {count:>12}");
    }
    println!(
        "\n  arithmetic intensity = FPI / FP movement = {:.2}  (paper: 0.53)",
        report.arithmetic_intensity(&m.analysis.arch)
    );
}
