//! `mira-roofline` end to end: place the STREAM triad and DGEMM on the
//! machine's roofline from the static closed forms alone, diff the
//! placement against the cache simulator, and solve for the size at
//! which DGEMM changes regime.
//!
//! Run with: `cargo run --release --example roofline`

use mira_roofline::{Ceilings, KernelRoofline};
use mira_sym::bindings;
use mira_workloads::roofval;
use mira_workloads::{dgemm::Dgemm, memval};

fn main() {
    let arch = mira_arch::ArchDescription::default();
    let c = Ceilings::from_arch(&arch);
    println!(
        "machine: {} scalar / {} packed FLOPs per cycle; {} / {} / {} B per cycle at L1 / L2 / DRAM\n",
        c.peak_scalar, c.peak_vector, c.bandwidth[0], c.bandwidth[1], c.bandwidth[2],
    );

    // --- the triad, placed statically and against the simulator ---
    for (n, reps, label) in [(20_000i64, 2i64, "capacity-sized"), (1024, 20, "L1-resident")] {
        let row = roofval::triad_roof(n, reps, false);
        println!("triad, n = {n}, reps = {reps} ({label}):");
        println!("  static:    {}", row.static_p);
        println!("  simulator: {}", row.dynamic_p);
        println!("  agreement: {}\n", if row.agrees() { "YES" } else { "NO" });
    }

    // --- the closed forms behind the placement ---
    let triad = mira_core::analyze_source(
        memval::TRIAD_SRC,
        &mira_core::MiraOptions::default(),
    )
    .unwrap();
    let kernel = KernelRoofline::analyze(&triad, "triad").unwrap();
    let b = bindings(&[("n", 1024), ("reps", 20)]);
    println!("triad closed forms at n = 1024, reps = 20:");
    println!("  FLOPs      = {}", kernel.flops.eval_count(&b).unwrap());
    println!("  data bytes = {}", kernel.data_bytes().eval_count(&b).unwrap());
    println!(
        "  compute ceiling = {} cycles, L1 ceiling = {} cycles",
        kernel.compute_cycles_expr(&c).eval_count(&b).unwrap(),
        kernel.l1_cycles_expr(&c).eval_count(&b).unwrap(),
    );

    // --- the DGEMM regime crossover, solved from the closed forms ---
    let dgemm = Dgemm::new();
    let k = KernelRoofline::analyze(&dgemm.analysis, "dgemm").unwrap();
    let base = bindings(&[("reps", 1)]);
    let x = k
        .crossover(&c, "n", &base, 2, 64)
        .unwrap()
        .expect("DGEMM changes regime");
    println!(
        "\nDGEMM leaves the {} roof at n = {} (onto the {} roof):",
        x.from, x.value, x.to
    );
    for n in [x.value - 2, x.value - 1, x.value, x.value + 4] {
        let b = bindings(&[("n", n), ("reps", 1)]);
        let p = k.place(&c, &b).unwrap();
        println!("  n = {n:>3}: {p}");
    }
    println!(
        "\n(cold compulsory DRAM traffic is O(n²): {} lines at n = {}; compute is O(n³))",
        k.footprint_lines
            .eval_count(&bindings(&[("n", x.value), ("reps", 1)]))
            .unwrap(),
        x.value,
    );
}
