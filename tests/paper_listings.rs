//! The paper's Listings 1-6 as executable tests, via the full pipeline.

use mira_core::{analyze_source, MiraOptions};
use mira_sym::bindings;
use mira_vm::Vm;

fn count_via(src: &str, binds: &[(&str, i128)]) -> (i64, i128, i128) {
    // returns (vm result, static IntArith-ish FPI proxy: we use total, dynamic total)
    let analysis = analyze_source(src, &MiraOptions::default()).unwrap();
    let mut vm = Vm::new(&analysis.object).unwrap();
    vm.call("f", &[]).unwrap();
    let result = vm.int_return();
    let report = analysis.report("f", &bindings(binds)).unwrap();
    let prof = vm.profile();
    let dynamic = prof.function("f").unwrap().inclusive.total();
    (result, report.total(), dynamic)
}

#[test]
fn listing1_basic_loop() {
    let src = "int f() {\n    int acc = 0;\n    for (int i = 0; i < 10; i++) {\n        acc = acc + 1;\n    }\n    return acc;\n}";
    let (result, statict, dynamic) = count_via(src, &[]);
    assert_eq!(result, 10);
    assert_eq!(statict, dynamic);
}

#[test]
fn listing2_nested_dependent() {
    let src = "int f() {\n    int acc = 0;\n    for (int i = 1; i <= 4; i++) {\n        for (int j = i + 1; j <= 6; j++) {\n            acc = acc + 1;\n        }\n    }\n    return acc;\n}";
    let (result, statict, dynamic) = count_via(src, &[]);
    assert_eq!(result, 14);
    assert_eq!(statict, dynamic);
}

#[test]
fn listing4_branch_in_loop() {
    let src = "int f() {\n    int acc = 0;\n    for (int i = 1; i <= 4; i++) {\n        for (int j = i + 1; j <= 6; j++) {\n            if (j > 4) {\n                acc = acc + 1;\n            }\n        }\n    }\n    return acc;\n}";
    let (result, statict, dynamic) = count_via(src, &[]);
    assert_eq!(result, 8);
    // one jump-over-else per untaken branch is the documented approximation
    let diff = (statict - dynamic).abs();
    assert!(diff <= 14, "diff {diff}");
}

#[test]
fn listing5_modulo_branch() {
    let src = "int f() {\n    int acc = 0;\n    for (int i = 1; i <= 4; i++) {\n        for (int j = i + 1; j <= 6; j++) {\n            if (j % 4 != 0) {\n                acc = acc + 1;\n            }\n        }\n    }\n    return acc;\n}";
    let (result, _statict, _dynamic) = count_via(src, &[]);
    assert_eq!(result, 11);
}

#[test]
fn listing6_annotations() {
    let src = r#"
int g(int i) {
    return i * 3;
}
int f() {
    int acc = 0;
    for (int i = 1; i <= 4; i++) {
#pragma @Annotation {lp_init: x, lp_cond: y}
        for (int j = g(i); j <= g(i + 6); j++) {
            acc = acc + 1;
        }
    }
    return acc;
}
"#;
    let analysis = analyze_source(src, &MiraOptions::default()).unwrap();
    // the annotated loop's bounds become model parameters x and y
    let params = analysis.parameters();
    assert!(params.contains(&"x".to_string()), "{params:?}");
    assert!(params.contains(&"y".to_string()), "{params:?}");
    let report = analysis
        .report("f", &bindings(&[("x", 3), ("y", 21)]))
        .unwrap();
    assert!(report.total() > 0);
}

#[test]
fn skip_annotation() {
    let src = r#"
int f() {
    int acc = 0;
#pragma @Annotation {skip: yes}
    for (int i = 0; i < 1000; i++) {
        acc = acc + 1;
    }
    return acc;
}
"#;
    let analysis = analyze_source(src, &MiraOptions::default()).unwrap();
    let report = analysis.report("f", &bindings(&[])).unwrap();
    let mut vm = Vm::new(&analysis.object).unwrap();
    vm.call("f", &[]).unwrap();
    assert_eq!(vm.int_return(), 1000); // still executes...
    assert!(report.total() < 100); // ...but the model excludes it
}
