//! Cross-crate integration tests: the full pipeline (front-end → compiler →
//! object → disassembler → metric generator → model → VM validation)
//! exercised through the workspace's public APIs.

use mira_arch::Category;
use mira_sym::bindings;
use mira_vm::{HostVal, Vm};
use mira_workloads::{dgemm::Dgemm, minife::MiniFe, stream::Stream};

#[test]
fn stream_table3_shape() {
    let s = Stream::new();
    let rows: Vec<_> = [20_000i64, 50_000].iter().map(|&n| s.row(n, 2)).collect();
    for row in &rows {
        assert!(row.dynamic_fpi >= row.static_fpi, "{row:?}");
        assert!(row.error_pct() < 0.5, "{row:?}");
    }
    // counts scale linearly with n
    let ratio = rows[1].dynamic_fpi as f64 / rows[0].dynamic_fpi as f64;
    assert!((ratio - 2.5).abs() < 0.05, "ratio {ratio}");
}

#[test]
fn dgemm_table4_shape() {
    let d = Dgemm::new();
    let rows: Vec<_> = [16i64, 32].iter().map(|&n| d.row(n, 1)).collect();
    for row in &rows {
        assert!(row.error_pct() < 0.1, "{row:?}");
    }
    // cubic scaling
    let ratio = rows[1].dynamic_fpi as f64 / rows[0].dynamic_fpi as f64;
    assert!(ratio > 7.0 && ratio < 9.0, "ratio {ratio}");
}

#[test]
fn minife_table5_shape() {
    let m = MiniFe::new();
    let rows = m.rows(8, 8, 8, 500, 1e-8);
    assert_eq!(rows.len(), 3);
    for row in &rows {
        // 8^3 sits in CG's pre-asymptotic regime, so the iteration
        // estimate is coarse; at the paper-scale grids of repro_table5 the
        // cg_solve error lands in the paper's few-percent band.
        assert!(
            row.error_pct() < 30.0,
            "{} error {}%",
            row.function,
            row.error_pct()
        );
    }
    // waxpby is the most predictable, cg_solve the least (annotation-driven)
    let waxpby = rows.iter().find(|r| r.function == "waxpby").unwrap();
    assert!(waxpby.error_pct() < 0.1, "{}", waxpby.error_pct());
}

#[test]
fn full_pipeline_category_exactness() {
    // a fresh kernel not used elsewhere: 2-D stencil with interior loop
    let src = r#"
void stencil(int n, double* u, double* v) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            v[i * n + j] = 0.25 * (u[(i - 1) * n + j] + u[(i + 1) * n + j]
                + u[i * n + j - 1] + u[i * n + j + 1]);
        }
    }
}
"#;
    let analysis = mira_core::analyze_source(src, &mira_core::MiraOptions::default()).unwrap();
    assert!(analysis.warnings.is_empty(), "{:?}", analysis.warnings);
    let n = 20i64;
    let mut vm = Vm::new(&analysis.object).unwrap();
    let u = vm.alloc_f64(&vec![1.0; (n * n) as usize]);
    let v = vm.alloc_zeroed_f64((n * n) as usize);
    vm.call(
        "stencil",
        &[HostVal::Int(n), HostVal::Int(u as i64), HostVal::Int(v as i64)],
    )
    .unwrap();
    let report = analysis
        .report("stencil", &bindings(&[("n", n as i128)]))
        .unwrap();
    let prof = vm.profile();
    let dynamic = &prof.function("stencil").unwrap().inclusive;
    for cat in Category::ALL {
        assert_eq!(report.counts.get(cat), dynamic.get(cat), "cat {cat}");
    }
}

/// The lifted shapes reach the emitted model end to end: the triangular
/// solve's per-line closed forms carry the exact `n(n-1)/2` trip count,
/// the composed sweep's call composition scales the callee by the step
/// loop, and the generated Python reproduces the Rust evaluation of
/// both — bit for bit — when executed under the system interpreter.
#[test]
fn triangular_and_composed_closed_forms_reach_python() {
    let n = 64i128;
    let tri = mira_core::analyze_source(
        mira_workloads::compose::TRISOLVE_SRC,
        &mira_core::MiraOptions::default(),
    )
    .unwrap();
    let binds = bindings(&[("n", n)]);
    // line 5 (`s = s - l[i*n+j] * x[j]`) loads 16 bytes per triangular
    // trip: 16 · n(n-1)/2
    let lines = tri.model.line_data_bytes_exprs("trisolve").unwrap();
    let (tri_load, tri_store) = &lines[&5];
    assert_eq!(tri_load.eval_count(&binds).unwrap(), 16 * n * (n - 1) / 2);
    assert_eq!(tri_store.eval_count(&binds).unwrap(), 0);

    let sweep = mira_core::analyze_source(
        mira_workloads::compose::STENCIL_SWEEP_SRC,
        &mira_core::MiraOptions::default(),
    )
    .unwrap();
    let sw_binds = bindings(&[("n", 100), ("steps", 7)]);

    // Rust-side reference values for both kernels …
    let expect = [
        tri.model.data_load_bytes_expr("trisolve").unwrap().eval_count(&binds).unwrap(),
        tri.model.data_store_bytes_expr("trisolve").unwrap().eval_count(&binds).unwrap(),
        tri.model.flops_expr("trisolve").unwrap().eval_count(&binds).unwrap(),
        sweep.model.data_load_bytes_expr("stencil_sweep").unwrap().eval_count(&sw_binds).unwrap(),
        sweep.model.data_store_bytes_expr("stencil_sweep").unwrap().eval_count(&sw_binds).unwrap(),
        sweep.model.flops_expr("stencil_sweep").unwrap().eval_count(&sw_binds).unwrap(),
    ];
    // … against the same six numbers from the generated Python
    let dir = std::env::temp_dir().join(format!("mira_pymodel_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tri_model.py"), tri.python_model()).unwrap();
    std::fs::write(dir.join("sweep_model.py"), sweep.python_model()).unwrap();
    let script = "import sys; sys.path.insert(0, sys.argv[1]); \
                  import tri_model, sweep_model; \
                  t = tri_model.trisolve_4(64); \
                  s = sweep_model.stencil_sweep_4(100, 7); \
                  data = lambda m, k: m.get(k + '_bytes', 0) - m.get('frame_' + k + '_bytes', 0); \
                  print(data(t, 'load'), data(t, 'store'), t.get('flops', 0), \
                        data(s, 'load'), data(s, 'store'), s.get('flops', 0))";
    let out = std::process::Command::new("python3")
        .args(["-c", script, dir.to_str().unwrap()])
        .output()
        .expect("python3 runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let got: Vec<i128> = String::from_utf8_lossy(&out.stdout)
        .split_whitespace()
        .map(|v| v.parse().unwrap())
        .collect();
    assert_eq!(got, expect, "Python model diverged from the Rust closed forms");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pbound_vs_mira_on_vectorized_code() {
    const TRIAD: &str = r#"
void triad(int n, double* a, double* b, double* c, double s) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] + s * c[i];
    }
}
"#;
    let n = 10_000i64;
    let binds = bindings(&[("n", n as i128)]);
    let program = mira_minic::frontend(TRIAD).unwrap();
    let pb_flops = mira_pbound::analyze(&program)["triad"].eval_flops(&binds);

    let opts = mira_core::MiraOptions {
        compiler: mira_vcc::Options::vectorized(),
        ..mira_core::MiraOptions::default()
    };
    let analysis = mira_core::analyze_source(TRIAD, &opts).unwrap();
    let mira_fpi = analysis.report("triad", &binds).unwrap().fpi(&analysis.arch);

    let mut vm = Vm::new(&analysis.object).unwrap();
    let b = vm.alloc_f64(&vec![1.0; n as usize]);
    let c = vm.alloc_f64(&vec![2.0; n as usize]);
    let a = vm.alloc_zeroed_f64(n as usize);
    vm.call(
        "triad",
        &[
            HostVal::Int(n),
            HostVal::Int(a as i64),
            HostVal::Int(b as i64),
            HostVal::Int(c as i64),
            HostVal::Fp(3.0),
        ],
    )
    .unwrap();
    let dyn_fpi = vm.profile().fpi("triad", &analysis.arch);

    // Mira (binary-informed) is exact; PBound (source-only) overestimates
    // FP instructions by ~2x on vectorized code — the paper's core claim.
    assert_eq!(mira_fpi, dyn_fpi);
    assert_eq!(pb_flops, 2 * n as i128);
    assert!(pb_flops as f64 / dyn_fpi as f64 > 1.8);
}
