//! Property-based end-to-end validation: randomly generated affine MiniC
//! programs must satisfy the exactness property — the statically generated
//! model's per-category counts equal instrumented execution of the same
//! binary, for every category, at several parameter values.

use mira_arch::Category;
use mira_core::{analyze_source, MiraOptions};
use mira_sym::bindings;
use mira_vm::{HostVal, Vm};
use proptest::prelude::*;

/// A random affine loop nest description.
#[derive(Clone, Debug)]
struct NestSpec {
    /// Per level: (lower offset, dependent-on-outer, upper offset)
    levels: Vec<(i64, bool, i64)>,
    /// Body statements: operations on a[<idx>] using doubles.
    body_ops: Vec<u8>,
    /// Optional affine guard `<var> > k` around the body.
    guard: Option<i64>,
}

fn arb_spec() -> impl Strategy<Value = NestSpec> {
    (
        proptest::collection::vec((0i64..3, any::<bool>(), 0i64..4), 1..=3),
        proptest::collection::vec(0u8..4, 1..=3),
        proptest::option::of(0i64..6),
    )
        .prop_map(|(levels, body_ops, guard)| NestSpec {
            levels,
            body_ops,
            guard,
        })
}

/// Render the spec as MiniC. The arrays are indexed by the innermost
/// variable only, so all programs are in the affine subset.
fn render(spec: &NestSpec) -> String {
    let mut src = String::from("double kernel(int n, double* a, double* b) {\n");
    src.push_str("    double acc = 0.0;\n");
    let mut indent = String::from("    ");
    let names = ["i", "j", "k"];
    for (lvl, (lo, dep, hi_off)) in spec.levels.iter().enumerate() {
        let v = names[lvl];
        let lo_expr = if *dep && lvl > 0 {
            format!("{} + {}", names[lvl - 1], lo)
        } else {
            format!("{lo}")
        };
        src.push_str(&format!(
            "{indent}for (int {v} = {lo_expr}; {v} < n + {hi_off}; {v}++) {{\n"
        ));
        indent.push_str("    ");
    }
    let inner = names[spec.levels.len() - 1];
    if let Some(g) = spec.guard {
        src.push_str(&format!("{indent}if ({inner} > {g}) {{\n"));
        indent.push_str("    ");
    }
    for op in &spec.body_ops {
        let stmt = match op % 4 {
            0 => format!("acc += a[{inner}] * b[{inner}];"),
            1 => format!("a[{inner}] = b[{inner}] + 1.5;"),
            2 => format!("b[{inner}] = a[{inner}] * 0.5 - acc;"),
            _ => format!("acc = acc + a[{inner}];"),
        };
        src.push_str(&format!("{indent}{stmt}\n"));
    }
    if spec.guard.is_some() {
        indent.truncate(indent.len() - 4);
        src.push_str(&format!("{indent}}}\n"));
    }
    for _ in 0..spec.levels.len() {
        indent.truncate(indent.len() - 4);
        src.push_str(&format!("{indent}}}\n"));
    }
    src.push_str("    return acc;\n}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_affine_nests_are_exact(spec in arb_spec(), n in 1i64..7) {
        let src = render(&spec);
        let analysis = analyze_source(&src, &MiraOptions::default())
            .unwrap_or_else(|e| panic!("analysis failed for:\n{src}\n{e}"));

        // guard-free programs must analyze without warnings; a guard has an
        // affine condition, so still no warnings expected
        prop_assert!(analysis.warnings.is_empty(), "warnings: {:?}\n{src}", analysis.warnings);

        let mut vm = Vm::new(&analysis.object).unwrap();
        // arrays sized for the largest index reachable: n + max hi_off
        let len = (n + 8) as usize;
        let a = vm.alloc_f64(&vec![1.0; len]);
        let b = vm.alloc_f64(&vec![2.0; len]);
        vm.call(
            "kernel",
            &[HostVal::Int(n), HostVal::Int(a as i64), HostVal::Int(b as i64)],
        )
        .unwrap();

        let report = analysis
            .report("kernel", &bindings(&[("n", n as i128)]))
            .unwrap();
        let prof = vm.profile();
        let dynamic = &prof.function("kernel").unwrap().inclusive;

        for cat in Category::ALL {
            // branch guards introduce one approximated jump-over-else; all
            // arithmetic and data-movement categories must be exact
            if spec.guard.is_some() && cat == Category::IntControlTransfer {
                continue;
            }
            prop_assert_eq!(
                report.counts.get(cat),
                dynamic.get(cat),
                "category {} mismatch (n={}) for:\n{}",
                cat,
                n,
                src
            );
        }
    }
}
