//! Adversarial fuzzing of the whole analysis pipeline: random token
//! soup, mutated valid programs, and adversarial loop nests (zero trip
//! counts, deep nesting, huge constants and extents) are pushed through
//! front-end → compile → model generation → roofline under
//! `catch_unwind`. The single property: **every input yields `Ok` or a
//! typed error — never a panic**, and refusals come back through the
//! [`mira_core::MiraError`] taxonomy with a phase attached.
//!
//! Inputs are drawn from the in-tree proptest shim's deterministic RNG,
//! so any failure reproduces by rerunning the same test. The case count
//! per generator honours `MIRA_FUZZ_CASES` (CI smoke runs a bounded
//! subset in release; the full adversarial run uses ≥700 per generator,
//! i.e. ≥2,100 inputs total).

use mira_core::{analyze_source, MiraOptions};
use mira_roofline::{Ceilings, KernelRoofline};
use mira_sym::Bindings;
use proptest::test_runner::TestRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn cases(default: usize) -> usize {
    std::env::var("MIRA_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Drive one source through the full pipeline. Panics (and thereby fails
/// the test) only if some phase panics instead of refusing.
fn drive(src: &str, huge_bindings: bool) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let analysis = match analyze_source(src, &MiraOptions::default()) {
            Ok(a) => a,
            Err(e) => {
                // typed refusal: phase attribution and Display must work
                let _ = e.phase();
                let _ = format!("{e}");
                let _ = std::error::Error::source(&e);
                return;
            }
        };
        let value: i128 = if huge_bindings { i64::MAX as i128 / 2 } else { 17 };
        let b: Bindings = analysis
            .parameters()
            .into_iter()
            .map(|p| (p, value))
            .collect();
        let ceilings = Ceilings::from_arch(&analysis.arch);
        let funcs: Vec<String> = analysis.model.functions.keys().cloned().collect();
        for f in funcs {
            // native evaluation: Ok or typed ModelError (overflow refusal)
            if let Err(e) = analysis.report(&f, &b) {
                let _ = format!("{e}");
            }
            // roofline: analysis may refuse (budget), placement may refuse
            // (overflow / missing param) — both typed
            match KernelRoofline::analyze(&analysis, &f) {
                Ok(k) => {
                    if let Err(e) = k.place(&ceilings, &b) {
                        let _ = format!("{e}");
                    }
                }
                Err(e) => {
                    let _ = format!("{e}");
                }
            }
        }
        // the emitted Python must always materialize
        let _ = analysis.python_model();
    }));
    assert!(
        outcome.is_ok(),
        "pipeline panicked instead of refusing on:\n{src}"
    );
}

// ---------------------------------------------------------------- soup

/// Random token soup: mostly-valid tokens in a random order, so lexing
/// usually succeeds and the parser/sema layers absorb the chaos.
fn token_soup(rng: &mut TestRng) -> String {
    const TOKENS: &[&str] = &[
        "int", "double", "for", "while", "if", "else", "return", "extern",
        "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/", "%",
        "=", "==", "!=", "<", ">", "<=", ">=", "++", "--", "+=", "-=",
        "&&", "||", "!", "x", "y", "n", "i", "a", "f", "main", "0", "1",
        "2", "42", "0.5", "1e9", "9999999999999999999999", "#pragma",
        "@Annotation", "\"str", "'", "\\", "$", "\u{0}",
    ];
    let len = 4 + (rng.next_u64() as usize % 120);
    let mut s = String::new();
    for _ in 0..len {
        s.push_str(TOKENS[rng.next_u64() as usize % TOKENS.len()]);
        if !rng.next_u64().is_multiple_of(3) {
            s.push(' ');
        }
        if rng.next_u64().is_multiple_of(11) {
            s.push('\n');
        }
    }
    s
}

#[test]
fn fuzz_token_soup_never_panics() {
    let mut rng = TestRng::deterministic("fuzz_token_soup_never_panics");
    for _ in 0..cases(150) {
        let src = token_soup(&mut rng);
        drive(&src, false);
    }
}

// ------------------------------------------------------------- mutation

const SEEDS: &[&str] = &[
    r#"
double dot(int n, double* x, double* y) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s += x[i] * y[i];
    }
    return s;
}
"#,
    r#"
double axpy(int n, double alpha, double* x, double* y) {
    for (int i = 0; i < n; i++) {
        y[i] = alpha * x[i] + y[i];
    }
    return y[0];
}
"#,
    r#"
extern double sqrt(double);
double norm(int n, double* x) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s += x[i] * x[i]; }
    return sqrt(s);
}
double scaled(int n, double* x) {
    return norm(n, x) * 0.5;
}
"#,
    r#"
double stencil(int n, double* a, double* b) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            b[i * n + j] = 0.25 * (a[(i - 1) * n + j] + a[(i + 1) * n + j]
                + a[i * n + j - 1] + a[i * n + j + 1]);
        }
    }
    return b[n + 1];
}
"#,
];

/// Mutate a valid program: delete, duplicate, or scramble a random span,
/// or splice two seeds together.
fn mutate(rng: &mut TestRng) -> String {
    let seed = SEEDS[rng.next_u64() as usize % SEEDS.len()];
    let mut bytes: Vec<u8> = seed.bytes().collect();
    let muts = 1 + rng.next_u64() % 4;
    for _ in 0..muts {
        if bytes.is_empty() {
            break;
        }
        let a = rng.next_u64() as usize % bytes.len();
        let b = (a + 1 + rng.next_u64() as usize % 24).min(bytes.len());
        match rng.next_u64() % 5 {
            0 => {
                bytes.drain(a..b);
            }
            1 => {
                let dup: Vec<u8> = bytes[a..b].to_vec();
                let at = rng.next_u64() as usize % (bytes.len() + 1);
                bytes.splice(at..at, dup);
            }
            2 => {
                bytes[a] = b"(){};=+*<>[]"[rng.next_u64() as usize % 12];
            }
            3 => {
                bytes.truncate(a);
            }
            _ => {
                let other = SEEDS[rng.next_u64() as usize % SEEDS.len()];
                let cut = rng.next_u64() as usize % (other.len() + 1);
                bytes.extend_from_slice(&other.as_bytes()[..cut]);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn fuzz_mutated_programs_never_panic() {
    let mut rng = TestRng::deterministic("fuzz_mutated_programs_never_panic");
    for _ in 0..cases(150) {
        let src = mutate(&mut rng);
        drive(&src, false);
    }
}

// ------------------------------------------------------ adversarial nests

/// Valid-but-hostile loop nests: zero trip counts, deep nesting, huge
/// constant bounds and extents, dependent bounds. These compile, so the
/// symbolic layers (poly, metrics, mem, roofline) take the hit — budgets
/// and checked evaluation must degrade or refuse, never hang or panic.
fn adversarial_nest(rng: &mut TestRng) -> String {
    let depth = match rng.next_u64() % 4 {
        0 => 1 + rng.next_u64() as usize % 3,
        1 => 4 + rng.next_u64() as usize % 6,
        2 => 16 + rng.next_u64() as usize % 16,
        _ => 40 + rng.next_u64() as usize % 25, // up to 64 deep
    };
    let mut src = String::from("double f(int n, double* a) {\n    double s = 0.0;\n");
    let mut indent = String::from("    ");
    for lvl in 0..depth {
        let v = format!("i{lvl}");
        let bound = match rng.next_u64() % 6 {
            0 => "0".to_string(),                      // zero trip count
            1 => "n".to_string(),
            2 => format!("n + {}", rng.next_u64() % 8),
            3 => format!("{}", 1 + rng.next_u64() % 4),
            4 => format!("{}", 1_000_000_000u64 + rng.next_u64() % 4_000_000_000), // huge
            _ => {
                if lvl > 0 {
                    format!("i{} + 2", lvl - 1) // dependent bound
                } else {
                    "n".to_string()
                }
            }
        };
        src.push_str(&format!(
            "{indent}for (int {v} = 0; {v} < {bound}; {v}++) {{\n"
        ));
        indent.push_str("    ");
    }
    let inner = format!("i{}", depth - 1);
    // huge extents / strides in the body indexing
    let stmt = match rng.next_u64() % 4 {
        0 => format!("s += a[{inner}];"),
        1 => format!("s += a[{inner} * {}];", 1 + rng.next_u64() % 1_000_000_007),
        2 => format!("a[{inner}] = s * 2.0;"),
        _ => format!(
            "s += a[{inner} + {}];",
            rng.next_u64() % 4_000_000_000_000u64
        ),
    };
    src.push_str(&format!("{indent}{stmt}\n"));
    for _ in 0..depth {
        indent.truncate(indent.len() - 4);
        src.push_str(&format!("{indent}}}\n"));
    }
    src.push_str("    return s;\n}\n");
    src
}

#[test]
fn fuzz_adversarial_nests_never_panic() {
    let mut rng = TestRng::deterministic("fuzz_adversarial_nests_never_panic");
    for i in 0..cases(150) {
        let src = adversarial_nest(&mut rng);
        // alternate huge and small parameter bindings so both the
        // symbolic layers and the checked closed-form evaluation are hit
        drive(&src, i % 2 == 0);
    }
}

// ------------------------------------- triangular × composed programs

/// Programs crossing dependent (triangular) bounds with 1–2 levels of
/// callee composition — the shapes the per-nest model now admits. The
/// callee's nests splice into the caller with formal→actual
/// substitution, dependent bounds go through the average-extent path,
/// and hostile argument lists (swapped pointers/values, arity
/// mismatches) must come back as typed refusals, never panics.
fn triangular_composed(rng: &mut TestRng) -> String {
    let mut src = String::new();
    // leaf: 1-3 loops, each bound possibly dependent on an ancestor
    let leaf_depth = 1 + rng.next_u64() as usize % 3;
    src.push_str("double leaf(int n, double* p, double* q) {\n    double s = 0.0;\n");
    let mut indent = String::from("    ");
    for lvl in 0..leaf_depth {
        let v = format!("i{lvl}");
        let bound = match rng.next_u64() % 5 {
            0 => "n".to_string(),
            1 => format!("{}", 1 + rng.next_u64() % 8),
            2 if lvl > 0 => format!("i{} + {}", lvl - 1, rng.next_u64() % 3),
            3 if lvl > 0 => format!("n - i{}", lvl - 1), // decreasing extent
            _ => "n + 1".to_string(),
        };
        src.push_str(&format!(
            "{indent}for (int {v} = 0; {v} < {bound}; {v}++) {{\n"
        ));
        indent.push_str("    ");
    }
    let inner = format!("i{}", leaf_depth - 1);
    match rng.next_u64() % 3 {
        0 => src.push_str(&format!("{indent}s += p[{inner}] * q[{inner}];\n")),
        1 => src.push_str(&format!("{indent}p[{inner}] = q[{inner}] + s;\n")),
        _ => src.push_str(&format!("{indent}p[i0] = p[i0] + 1.0;\n")),
    }
    for _ in 0..leaf_depth {
        indent.truncate(indent.len() - 4);
        src.push_str(&format!("{indent}}}\n"));
    }
    src.push_str("    return s;\n}\n");
    // optional middle hop: a second composition level
    let two_level = rng.next_u64().is_multiple_of(2);
    if two_level {
        src.push_str(
            "double mid(int n, double* u, double* v) {\n    return leaf(n, u, v) + leaf(n, v, u);\n}\n",
        );
    }
    // caller: 0-2 enclosing loops (possibly triangular) around 1-2 calls
    // with adversarial argument lists
    src.push_str("double f(int n, double* a, double* b) {\n    double s = 0.0;\n");
    let call_depth = rng.next_u64() as usize % 3;
    let mut indent = String::from("    ");
    for lvl in 0..call_depth {
        let v = format!("k{lvl}");
        let bound = if lvl > 0 && rng.next_u64().is_multiple_of(2) {
            format!("k{} + 1", lvl - 1)
        } else {
            "n".to_string()
        };
        src.push_str(&format!(
            "{indent}for (int {v} = 0; {v} < {bound}; {v}++) {{\n"
        ));
        indent.push_str("    ");
    }
    let callee = if two_level { "mid" } else { "leaf" };
    for _ in 0..(1 + rng.next_u64() % 2) {
        let args = match rng.next_u64() % 6 {
            0 => "n, a, b".to_string(),
            1 => "n, b, a".to_string(),
            2 => "n + 2, a, a".to_string(),
            3 if call_depth > 0 => "k0, a, b".to_string(), // loop-var extent
            4 => "n, a".to_string(),                       // arity mismatch
            _ => "n, b, b".to_string(),
        };
        src.push_str(&format!("{indent}s += {callee}({args});\n"));
    }
    for _ in 0..call_depth {
        indent.truncate(indent.len() - 4);
        src.push_str(&format!("{indent}}}\n"));
    }
    src.push_str("    return s;\n}\n");
    src
}

#[test]
fn fuzz_triangular_composed_never_panics() {
    let mut rng = TestRng::deterministic("fuzz_triangular_composed_never_panics");
    for i in 0..cases(150) {
        let src = triangular_composed(&mut rng);
        drive(&src, i % 2 == 0);
    }
}
