//! Probes-on vs probes-off differentials: `mira-probe` must observe the
//! pipeline without perturbing it. A captured run has to produce
//! bit-identical VM profiles and identical model closed forms — the
//! observability layer's core contract, pinned here so instrumentation
//! can never silently change what it measures.

use mira_vm::{HostVal, Vm, VmOptions};

const TRIAD: &str = r#"
void triad(int n, double* a, double* b, double* c, double s) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] + s * c[i];
    }
}
"#;

fn run_triad(opts: VmOptions) -> (mira_vm::Profile, u64, Vec<f64>) {
    let analysis = mira_core::analyze_source(TRIAD, &mira_core::MiraOptions::default()).unwrap();
    let n = 257i64; // odd, so a vectorized build would also cover a remainder
    let mut vm = Vm::load(&analysis.object, opts).unwrap();
    let a = vm.alloc_zeroed_f64(n as usize);
    let b = vm.alloc_f64(&vec![2.0; n as usize]);
    let c = vm.alloc_f64(&vec![0.5; n as usize]);
    vm.call(
        "triad",
        &[
            HostVal::Int(n),
            HostVal::Int(a as i64),
            HostVal::Int(b as i64),
            HostVal::Int(c as i64),
            HostVal::Fp(3.0),
        ],
    )
    .unwrap();
    (vm.profile(), vm.steps(), vm.read_f64(a, n as usize))
}

#[test]
fn captured_vm_run_is_bit_identical() {
    // probes off (the default in test binaries)
    let (plain_prof, plain_steps, plain_out) = run_triad(VmOptions::default());

    // probes on, plus the block-profile reporting surface
    let opts = VmOptions {
        block_profile: true,
        ..VmOptions::default()
    };
    let ((probed_prof, probed_steps, probed_out), trace) =
        mira_probe::capture(|| run_triad(opts));

    assert_eq!(plain_prof, probed_prof, "probes changed the instruction profile");
    assert_eq!(plain_steps, probed_steps, "probes changed the retired-step count");
    assert_eq!(plain_out, probed_out, "probes changed computed results");

    // and the capture actually observed the run
    assert!(trace.has_span("vm.call"), "{}", trace.report());
    assert!(trace.has_span("phase.frontend"), "{}", trace.report());
    assert!(trace.has_span("phase.metrics"), "{}", trace.report());
}

#[test]
fn captured_analysis_yields_identical_closed_forms() {
    let src = mira_workloads::compose::TRISOLVE_SRC;
    let opts = mira_core::MiraOptions::default();

    let plain = mira_core::analyze_source(src, &opts).unwrap();
    let (probed, trace) = mira_probe::capture(|| mira_core::analyze_source(src, &opts).unwrap());

    // the whole generated model, not just one expression: the Python
    // emission linearizes every closed form, so string equality means
    // the symbolic pipeline took the same simplification path
    assert_eq!(
        plain.python_model(),
        probed.python_model(),
        "probes changed the generated model"
    );

    let binds = mira_sym::bindings(&[("n", 64)]);
    let a = plain.model.flops_expr("trisolve").unwrap().eval_count(&binds).unwrap();
    let b = probed.model.flops_expr("trisolve").unwrap().eval_count(&binds).unwrap();
    assert_eq!(a, b);

    // the capture recorded the symbolic work it did not perturb
    assert!(trace.has_span("sym.budget"), "{}", trace.report());
    assert!(trace.has_span("phase.metrics"), "{}", trace.report());
}

#[test]
fn captured_footprint_analysis_is_identical() {
    // the mem layer (affine derivation → per-nest working sets) under
    // capture vs plain: same closed forms, and the capture holds the
    // mem spans
    let src = mira_workloads::compose::TRISOLVE_SRC;
    let opts = mira_core::MiraOptions::default();
    let analysis = mira_core::analyze_source(src, &opts).unwrap();

    let plain = mira_mem::analyze_program(&analysis.program).footprint("trisolve");
    let (probed, trace) = mira_probe::capture(|| {
        mira_mem::analyze_program(&analysis.program).footprint("trisolve")
    });
    assert_eq!(
        format!("{plain:?}"),
        format!("{probed:?}"),
        "probes changed the affine access analysis"
    );
    assert!(trace.has_span("mem.analyze_program"), "{}", trace.report());
    assert!(trace.has_span("mem.analyze_func"), "{}", trace.report());
}
