#!/usr/bin/env bash
# Panic audit: count panic-capable calls (.unwrap(), .expect(, panic!,
# unreachable!, todo!, unimplemented!) in the NON-TEST code of the
# analysis crates and fail if any crate regresses above its committed
# baseline. The baselines are the post-"crash-free pipeline" counts —
# every remaining call is an internal invariant (sema-guaranteed match
# arms, scope-stack discipline), not a path reachable from user input.
#
# Counting rules:
#   * everything from the first `#[cfg(test)]` line of a file onward is
#     ignored (test modules sit at file tails in this repo);
#   * `self.expect(` is the parser's Result-returning token helper, not
#     std's panicking Option/Result::expect — excluded.
#
# Lowering a baseline after removing panic paths is encouraged; raising
# one requires justifying a brand-new invariant in review.

set -euo pipefail
cd "$(dirname "$0")/.."

declare -A BASELINE=(
    [mem]=0
    [roofline]=0
    [vcc]=24
    [minic]=1
    # the observability layer must never crash the pipeline it watches:
    # probes run inside every phase, so the baseline is pinned at zero
    [probe]=0
    # the serving tier answers untrusted queries at rate: every refusal
    # is a typed error (BuildError / ServeError), never a panic
    [serve]=0
)

fail=0
for crate in mem roofline vcc minic probe serve; do
    total=0
    while IFS= read -r f; do
        # grep exits 1 on zero matches: that's a clean count, not an error
        n=$(awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
            | { grep -v 'self\.expect(' || true; } \
            | { grep -o '\.unwrap()\|\.expect(\|panic!(\|unreachable!(\|todo!(\|unimplemented!(' || true; } \
            | wc -l)
        total=$((total + n))
    done < <(find "crates/$crate/src" -name '*.rs')
    base=${BASELINE[$crate]}
    if [ "$total" -gt "$base" ]; then
        echo "FAIL: crates/$crate has $total panic-capable calls in non-test code (baseline $base)"
        fail=1
    else
        echo "ok:   crates/$crate $total/$base panic-capable calls"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo
    echo "Panic-capable calls regressed. Convert new panics into typed errors"
    echo "(CompileError / FrontendError / budget refusal) or, for a genuine"
    echo "new invariant, update the baseline in scripts/panic_audit.sh with"
    echo "a justification in the PR."
    exit 1
fi
